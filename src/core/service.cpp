#include "core/service.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/spsc_ring.hpp"

namespace tommy::core {

namespace {

/// One ring element: a submit, a heartbeat, or a retirement, as data. The
/// lane preserves per-session FIFO; cross-lane order is reconstructed
/// nowhere (it does not matter — see Session::submit_relaxed in
/// online_sequencer.hpp).
struct IngestOp {
  enum class Kind : std::uint8_t { kSubmit, kHeartbeat, kRetire };
  Kind kind{Kind::kSubmit};
  TimePoint stamp{};    // submit: message stamp; heartbeat: local stamp
  MessageId id{};       // submit only
  TimePoint arrival{};  // sequencer clock (`now`)
};

/// Empty drain rounds a worker spins through before parking on its
/// wake epoch. Parking costs a futex round trip on the next wake; the
/// spin keeps bursty producers off that path.
constexpr int kSpinRoundsBeforePark = 256;
/// Ring ops a worker applies per lane per drain round (bounds the scratch
/// buffer; fairness across a shard's lanes).
constexpr std::size_t kDrainBudget = 256;

/// Heap comparator for the kGlobalMerge holdback: "after" under the
/// release order (safe_time, shard, rank), so std::push_heap/pop_heap —
/// max-heap primitives — keep the NEXT record to release at the root.
struct MergeAfter {
  bool operator()(const std::pair<EmissionRecord, std::uint32_t>& lhs,
                  const std::pair<EmissionRecord, std::uint32_t>& rhs) const {
    if (lhs.first.safe_time != rhs.first.safe_time) {
      return lhs.first.safe_time > rhs.first.safe_time;
    }
    if (lhs.second != rhs.second) return lhs.second > rhs.second;
    return lhs.first.batch.rank > rhs.first.batch.rank;
  }
};

}  // namespace

// ── Threaded-mode plumbing ──────────────────────────────────────────────

struct FairOrderingService::IngestLane {
  SpscRing<IngestOp> ring;
  ClientId client;
  ShardWorker* worker;  // for the producer-side wake
  /// Consumer-side shard session; opened BY THE WORKER when it adopts the
  /// lane (open_session touches sequencer state, which belongs to the
  /// worker thread in threaded mode).
  OnlineSequencer::Session inner{};
  bool adopted{false};

  IngestLane(std::size_t capacity, ClientId c, ShardWorker* w)
      : ring(capacity), client(c), worker(w) {}
};

struct FairOrderingService::ShardWorker {
  OnlineSequencer* shard{nullptr};
  std::uint32_t shard_index{0};

  // Lane registry: producers register under the mutex and bump the
  // version; the worker re-snapshots its lane cache when the version
  // moves, so steady-state drains run lock-free over raw pointers.
  std::mutex lanes_mutex;
  std::vector<std::unique_ptr<IngestLane>> lanes;
  std::atomic<std::uint64_t> lanes_version{0};
  std::vector<IngestLane*> lane_cache;
  std::uint64_t lane_cache_version{0};

  // Wake protocol (eventcount): a producer that observes `sleeping` after
  // its push bumps the epoch and notifies; the worker re-checks its rings
  // between advertising sleep and waiting, with seq_cst fences closing
  // the store/load race on both sides.
  std::atomic<std::uint32_t> wake_epoch{0};
  std::atomic<bool> sleeping{false};

  // Command mailbox (poll/flush/barrier/rebind). The service serializes
  // callers (Threading::control), so at most one command is in flight per
  // worker: the caller writes the plain fields, then publishes with a
  // release store of cmd_seq; the worker acknowledges with a release
  // store of ack_seq after writing its plain reply fields.
  enum class Cmd : std::uint8_t { kPoll, kFlush, kBarrier, kRebind };
  Cmd cmd{Cmd::kBarrier};
  TimePoint cmd_now{};
  // kRebind payload: the staged epoch's engine, plus clients newly routed
  // to this shard. Written by the installer before publishing cmd_seq;
  // consumed (and cleared) by the worker at its quiesce point, so the
  // rebind touches sequencer state only on the owning thread.
  std::shared_ptr<const PrecedingEngine> rebind_target;
  std::vector<ClientId> rebind_clients;
  std::atomic<std::uint64_t> cmd_seq{0};
  std::atomic<std::uint64_t> ack_seq{0};
  // Shard-state snapshots taken at every command ack. The service's
  // threaded-mode accessors read ONLY these (under Threading::control,
  // after the ack) — never the live sequencer, which the worker may
  // already be mutating again for ops enqueued after the command.
  TimePoint reported_next_safe{TimePoint::infinite_future()};
  std::size_t reported_pending{0};
  std::size_t reported_violations{0};

  // Emission queue: the worker parks records here (in rank order); the
  // polling thread swaps them out after the ack. A mutex, not a ring —
  // it is touched once per emitted batch, not once per message.
  std::mutex emissions_mutex;
  std::vector<EmissionRecord> emissions;

  std::atomic<bool> stop{false};
  std::thread thread;

  // Worker-local scratch, reused across drain rounds.
  std::vector<IngestOp> ops;
  std::vector<Submission> batch;

  void wake() {
    wake_epoch.fetch_add(1, std::memory_order_release);
    wake_epoch.notify_all();
  }

  /// Producer side: enqueue with backpressure (a full ring spins until
  /// the worker catches up — bounded memory beats unbounded queues under
  /// overload).
  void push(IngestLane& lane, IngestOp op) {
    while (!lane.ring.try_push(std::move(op))) {
      wake();
      std::this_thread::yield();
    }
    // Dekker handshake with the worker's park path: either this fence
    // makes our push visible to its pre-park re-check, or we observe
    // sleeping==true and wake it.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleeping.load(std::memory_order_relaxed)) wake();
  }

  /// Nonblocking producer side for event-driven front-ends: a full ring
  /// returns false instead of spinning (the worker is still woken, so the
  /// caller's retry finds room soon). Success runs the same Dekker
  /// handshake as push().
  bool try_push(IngestLane& lane, IngestOp op) {
    if (!lane.ring.try_push(std::move(op))) {
      wake();
      return false;
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleeping.load(std::memory_order_relaxed)) wake();
    return true;
  }

  void refresh_lane_cache() {
    const std::uint64_t version =
        lanes_version.load(std::memory_order_acquire);
    if (version == lane_cache_version) return;
    std::lock_guard<std::mutex> lock(lanes_mutex);
    lane_cache.clear();
    for (const auto& lane : lanes) lane_cache.push_back(lane.get());
    lane_cache_version = lanes_version.load(std::memory_order_relaxed);
    for (IngestLane* lane : lane_cache) {
      if (!lane->adopted) {
        lane->inner = shard->open_session(lane->client);
        lane->adopted = true;
      }
    }
  }

  /// Pops up to `max` ops from `lane` and applies them. Runs of
  /// consecutive submits apply through the batched (relaxed) session
  /// surface. Returns the number of ops applied (0: lane was empty).
  std::size_t drain_lane(IngestLane* lane, std::size_t max) {
    ops.clear();
    const std::size_t got = lane->ring.pop_bulk(ops, max);
    if (got == 0) return 0;
    std::size_t i = 0;
    const std::size_t n = ops.size();
    while (i < n) {
      if (ops[i].kind == IngestOp::Kind::kHeartbeat) {
        lane->inner.heartbeat(ops[i].stamp, ops[i].arrival);
        ++i;
        continue;
      }
      if (ops[i].kind == IngestOp::Kind::kRetire) {
        // FIFO through the lane: everything the departing session
        // enqueued before closing has already been applied above.
        shard->retire_client(lane->client);
        ++i;
        continue;
      }
      batch.clear();
      while (i < n && ops[i].kind == IngestOp::Kind::kSubmit) {
        batch.push_back(Submission{ops[i].stamp, ops[i].id, ops[i].arrival});
        ++i;
      }
      lane->inner.submit_batch_relaxed(std::span<const Submission>(batch));
    }
    return got;
  }

  /// One drain round: applies up to kDrainBudget ops per lane. Returns
  /// whether anything was applied. Bails between lanes when a command
  /// lands (`handled` is the last acknowledged cmd_seq): a full round is
  /// up to lanes × kDrainBudget ops, and per-op cost degrades with
  /// buffer depth, so checking only between rounds lets a backlogged
  /// shard keep a poll or an epoch swap waiting for the whole round.
  /// Bailing early is safe — the command prologue (drain_visible)
  /// re-covers whatever this round left in the rings.
  bool drain_round(std::uint64_t handled) {
    refresh_lane_cache();
    bool any = false;
    for (IngestLane* lane : lane_cache) {
      if (cmd_seq.load(std::memory_order_acquire) != handled) break;
      if (drain_lane(lane, kDrainBudget) != 0) any = true;
    }
    return any;
  }

  /// Command prologue: applies everything enqueued before the caller
  /// published the command. All such ops are visible at entry (release/
  /// acquire on cmd_seq plus the ring tails) and FIT in the rings, so
  /// popping at most capacity() ops per lane covers them. Bounded by
  /// construction: looping drain_round() to an all-rings-empty instant
  /// instead would let producers that keep pushing during the pass defer
  /// a poll or an epoch swap indefinitely (observed as multi-second
  /// reconfigure() latency under sustained ingest on small hosts). Ops
  /// that race in behind the per-lane budget are applied after the
  /// command acts — indistinguishable from arriving a moment later; for
  /// kRebind that is exactly the live-reconfig contract (post-boundary
  /// ops sequence under the new epoch, revalidated by generation).
  void drain_visible() {
    refresh_lane_cache();
    for (IngestLane* lane : lane_cache) {
      std::size_t budget = lane->ring.capacity();
      while (budget > 0) {
        const std::size_t got =
            drain_lane(lane, budget < kDrainBudget ? budget : kDrainBudget);
        if (got == 0) break;
        budget -= got;
      }
    }
  }

  void run() {
    std::uint64_t handled = 0;
    int idle_rounds = 0;
    // Parks emissions in the queue, shard-tagged later by the drain
    // (records stay in rank order — the push order).
    auto park = [this](EmissionRecord&& record, std::uint32_t) {
      std::lock_guard<std::mutex> lock(emissions_mutex);
      emissions.push_back(std::move(record));
    };
    CallbackSink<decltype(park)> sink(park);
    while (true) {
      const bool did_work = drain_round(handled);
      const std::uint64_t seq = cmd_seq.load(std::memory_order_acquire);
      if (seq != handled) {
        // A command partitions time: everything enqueued before the
        // caller published it is visible (release/acquire on cmd_seq
        // plus the ring tails), so apply exactly that, then act at the
        // caller's `now`.
        drain_visible();
        switch (cmd) {
          case Cmd::kPoll:
            shard->poll(cmd_now, sink, shard_index);
            break;
          case Cmd::kFlush:
            shard->flush(cmd_now, sink, shard_index);
            break;
          case Cmd::kBarrier:
            break;
          case Cmd::kRebind:
            // The quiesce point of the epoch swap: every pre-command op
            // is applied (the drain_visible above) and the worker is the
            // only thread that touches sequencer state, so the shard
            // rebinds to the staged engine with no op in flight. Ops
            // enqueued after the command sequence under the new epoch.
            shard->rebind_engine(std::move(rebind_target), rebind_clients);
            rebind_target.reset();
            rebind_clients.clear();
            break;
        }
        reported_next_safe = shard->next_safe_time();
        reported_pending = shard->pending_count();
        reported_violations = shard->fairness_violations();
        handled = seq;
        ack_seq.store(seq, std::memory_order_release);
        ack_seq.notify_all();
        idle_rounds = 0;
        continue;
      }
      if (did_work) {
        idle_rounds = 0;
        continue;
      }
      if (stop.load(std::memory_order_acquire)) return;
      if (++idle_rounds < kSpinRoundsBeforePark) {
        std::this_thread::yield();
        continue;
      }
      // Park: advertise, fence, re-check for work that raced the
      // advertisement, then wait on the epoch.
      const std::uint32_t epoch = wake_epoch.load(std::memory_order_relaxed);
      sleeping.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      bool pending = stop.load(std::memory_order_acquire) ||
                     cmd_seq.load(std::memory_order_acquire) != handled;
      if (!pending) {
        refresh_lane_cache();
        for (IngestLane* lane : lane_cache) {
          if (!lane->ring.empty()) {
            pending = true;
            break;
          }
        }
      }
      if (!pending) wake_epoch.wait(epoch, std::memory_order_acquire);
      sleeping.store(false, std::memory_order_relaxed);
      idle_rounds = 0;
    }
  }
};

struct FairOrderingService::Threading {
  /// Index-aligned with shards_; null where the shard is unpopulated.
  std::vector<std::unique_ptr<ShardWorker>> workers;
  /// Serializes poll/flush/quiesce/state accessors (producers never take
  /// it — their path is the rings).
  std::mutex control;

  /// Publishes `cmd` to every populated worker, then waits for all acks;
  /// on return every worker's reported_* snapshots are current (the ack's
  /// release/acquire pair orders them). Caller must hold `control`.
  void broadcast_and_await(ShardWorker::Cmd cmd, TimePoint now) {
    for (auto& worker : workers) {
      if (!worker) continue;
      worker->cmd = cmd;
      worker->cmd_now = now;
      worker->cmd_seq.store(worker->cmd_seq.load(std::memory_order_relaxed)
                                + 1,
                            std::memory_order_release);
      worker->wake();
    }
    for (auto& worker : workers) {
      if (!worker) continue;
      const std::uint64_t seq =
          worker->cmd_seq.load(std::memory_order_relaxed);
      std::uint64_t acked = worker->ack_seq.load(std::memory_order_acquire);
      while (acked != seq) {
        worker->ack_seq.wait(acked, std::memory_order_acquire);
        acked = worker->ack_seq.load(std::memory_order_acquire);
      }
    }
  }
};

const char* to_string(OpenError error) {
  switch (error) {
    case OpenError::kNone:
      return "none";
    case OpenError::kUnknownClient:
      return "unknown client";
    case OpenError::kRegistryChanged:
      return "reconfig pending; retry after install";
  }
  return "unknown";
}

// ── Routers ─────────────────────────────────────────────────────────────

RangeRouter::RangeRouter(ClientId lo, ClientId hi)
    : lo_(lo.value()),
      span_(static_cast<std::uint64_t>(hi.value()) - lo.value() + 1) {
  TOMMY_EXPECTS(lo <= hi);
}

std::uint32_t RangeRouter::route(ClientId client,
                                 std::uint32_t shard_count) const {
  TOMMY_EXPECTS(shard_count > 0);
  const std::uint64_t id = client.value();
  if (id < lo_) return 0;
  const std::uint64_t offset = id - lo_;
  if (offset >= span_) return shard_count - 1;
  // Equal-width ranges: shard = ⌊offset · n / span⌋ < n.
  return static_cast<std::uint32_t>(offset * shard_count / span_);
}

std::uint32_t ModuloRouter::route(ClientId client,
                                  std::uint32_t shard_count) const {
  TOMMY_EXPECTS(shard_count > 0);
  return client.value() % shard_count;
}

// ── Service ─────────────────────────────────────────────────────────────

FairOrderingService::FairOrderingService(
    const ClientRegistry& registry, std::vector<ClientId> expected_clients,
    ServiceConfig config)
    : registry_(registry),
      router_(std::move(config.router)),
      online_config_(config.online),
      prefill_engines_(config.worker_threads),
      drain_policy_(config.drain_policy),
      ingest_ring_capacity_(config.ingest_ring_capacity) {
  TOMMY_EXPECTS(config.shard_count > 0);
  TOMMY_EXPECTS(!expected_clients.empty());
  // The naive reference path mutates engine caches per query; it has no
  // thread-safe variant (and needs none — it exists for the equivalence
  // suite).
  TOMMY_EXPECTS(!(config.worker_threads && config.online.reference_mode));

  if (!router_) {
    ClientId lo = expected_clients.front();
    ClientId hi = expected_clients.front();
    for (ClientId c : expected_clients) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    router_ = std::make_shared<RangeRouter>(lo, hi);
  }

  // One engine for every shard, primed once; its derived tables are a
  // function of the registry alone, so every shard reads the same data.
  // Worker threads additionally require the full critical-gap prefill:
  // after it, no fast_* query writes anything, so N workers share the
  // tables with no synchronization.
  auto engine = std::make_shared<PrecedingEngine>(registry,
                                                  config.online.preceding);
  if (!config.online.reference_mode) {
    engine->prime(config.online.threshold, config.online.p_safe,
                  /*prefill_pairs=*/config.worker_threads);
  }
  engine_ = engine;
  primed_generation_ = registry.generation();

  // Static partition: route once per expected client, preserving the
  // caller's order within each shard (so a 1-shard service sees exactly
  // the same expected-client vector as a bare sequencer would).
  std::vector<std::vector<ClientId>> partition(config.shard_count);
  for (ClientId c : expected_clients) {
    const std::uint32_t s = router_->route(c, config.shard_count);
    TOMMY_EXPECTS(s < config.shard_count);
    if (shard_by_client_.emplace(c, s).second) {
      partition[s].push_back(c);
    }
  }

  shards_.resize(config.shard_count);
  for (std::uint32_t s = 0; s < config.shard_count; ++s) {
    if (partition[s].empty()) continue;  // unpopulated shard
    // Threaded shards are pinned: they never re-prime the shared engine
    // (workers read it lock-free); epoch swaps go through rebind_engine.
    shards_[s] = std::make_unique<OnlineSequencer>(
        engine_, std::move(partition[s]), config.online,
        /*pinned=*/config.worker_threads);
  }

  if (config.worker_threads) {
    threading_ = std::make_unique<Threading>();
    threading_->workers.resize(shards_.size());
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s]) continue;
      auto worker = std::make_unique<ShardWorker>();
      worker->shard = shards_[s].get();
      worker->shard_index = s;
      worker->thread = std::thread([w = worker.get()] { w->run(); });
      threading_->workers[s] = std::move(worker);
    }
  }
}

FairOrderingService::~FairOrderingService() {
  join_primer();
  if (!threading_) return;
  for (auto& worker : threading_->workers) {
    if (!worker) continue;
    worker->stop.store(true, std::memory_order_release);
    worker->wake();
  }
  for (auto& worker : threading_->workers) {
    if (worker && worker->thread.joinable()) worker->thread.join();
  }
}

std::optional<FairOrderingService::Session>
FairOrderingService::try_open_session(ClientId client, OpenError* error) {
  auto report = [error](OpenError e) {
    if (error != nullptr) *error = e;
  };
  // Known clients always open: a re-announce no longer freezes the
  // service — sessions revalidate their cached offsets by generation, and
  // the epoch swap happens at a quiesce point behind them.
  if (expects_client(client)) {
    report(OpenError::kNone);
    return open_session(client);
  }
  // Unknown here, but queued to join at the next install: tell the caller
  // to retry once the reconfig lands (wire front-ends surface this as
  // ReconfigPending).
  {
    std::lock_guard<std::mutex> lock(reconfig_.mutex);
    const auto& pending = reconfig_.pending_clients;
    if (std::find(pending.begin(), pending.end(), client) != pending.end()) {
      report(OpenError::kRegistryChanged);
      return std::nullopt;
    }
  }
  report(OpenError::kUnknownClient);
  return std::nullopt;
}

FairOrderingService::Session FairOrderingService::open_session(
    ClientId client) {
  const std::uint32_t s = shard_of(client);
  Session session;
  session.client_ = client;
  session.shard_ = s;
  if (threading_) {
    ShardWorker& worker = *threading_->workers[s];
    auto lane = std::make_unique<IngestLane>(ingest_ring_capacity_, client,
                                             &worker);
    session.lane_ = lane.get();
    {
      std::lock_guard<std::mutex> lock(worker.lanes_mutex);
      worker.lanes.push_back(std::move(lane));
      worker.lanes_version.fetch_add(1, std::memory_order_release);
    }
    worker.wake();  // adopt promptly (opens the shard-side session)
  } else {
    session.inner_ = shards_[s]->open_session(client);
  }
  return session;
}

void FairOrderingService::Session::submit(TimePoint stamp, MessageId id,
                                          TimePoint now) {
  if (lane_ == nullptr) {
    inner_.submit(stamp, id, now);
    return;
  }
  IngestOp op;
  op.kind = IngestOp::Kind::kSubmit;
  op.stamp = stamp;
  op.id = id;
  op.arrival = now;
  lane_->worker->push(*lane_, op);
}

void FairOrderingService::Session::submit_batch(
    std::span<const Submission> items) {
  if (lane_ == nullptr) {
    // Relaxed on purpose, matching threaded mode: batches accumulated per
    // session interleave arbitrarily with other sessions' arrivals by
    // construction (see Session::submit_relaxed in online_sequencer.hpp
    // for why that cannot change emissions).
    inner_.submit_batch_relaxed(items);
    return;
  }
  for (const Submission& item : items) {
    IngestOp op;
    op.kind = IngestOp::Kind::kSubmit;
    op.stamp = item.stamp;
    op.id = item.id;
    op.arrival = item.arrival;
    lane_->worker->push(*lane_, op);
  }
}

void FairOrderingService::Session::heartbeat(TimePoint local_stamp,
                                             TimePoint now) {
  if (lane_ == nullptr) {
    inner_.heartbeat(local_stamp, now);
    return;
  }
  IngestOp op;
  op.kind = IngestOp::Kind::kHeartbeat;
  op.stamp = local_stamp;
  op.arrival = now;
  lane_->worker->push(*lane_, op);
}

std::size_t FairOrderingService::Session::try_submit_batch(
    std::span<const Submission> items) {
  if (lane_ == nullptr) {
    // Sequential ingest has no capacity limit: the caller holds the
    // service's ingest serialization (its try step is acquiring that
    // lock), so acceptance here is total.
    inner_.submit_batch_relaxed(items);
    return items.size();
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    IngestOp op;
    op.kind = IngestOp::Kind::kSubmit;
    op.stamp = items[i].stamp;
    op.id = items[i].id;
    op.arrival = items[i].arrival;
    if (!lane_->worker->try_push(*lane_, op)) return i;
  }
  return items.size();
}

bool FairOrderingService::Session::try_heartbeat(TimePoint local_stamp,
                                                 TimePoint now) {
  if (lane_ == nullptr) {
    inner_.heartbeat(local_stamp, now);
    return true;
  }
  IngestOp op;
  op.kind = IngestOp::Kind::kHeartbeat;
  op.stamp = local_stamp;
  op.arrival = now;
  return lane_->worker->try_push(*lane_, op);
}

std::uint32_t FairOrderingService::shard_of(ClientId client) const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  const auto it = shard_by_client_.find(client);
  TOMMY_EXPECTS(it != shard_by_client_.end());  // unknown clients are a
                                                // config error
  return it->second;
}

bool FairOrderingService::expects_client(ClientId client) const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  return shard_by_client_.contains(client);
}

bool FairOrderingService::has_shard(std::uint32_t index) const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  return index < shards_.size() && shards_[index] != nullptr;
}

const PrecedingEngine& FairOrderingService::engine() const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  return *engine_;
}

void FairOrderingService::submit(const Message& m) {
  TOMMY_EXPECTS(!threading_);  // threaded mode is session-only
  shards_[shard_of(m.client)]->on_message(m);
}

void FairOrderingService::heartbeat(ClientId client, TimePoint local_stamp,
                                    TimePoint now) {
  TOMMY_EXPECTS(!threading_);  // threaded mode is session-only
  shards_[shard_of(client)]->on_heartbeat(client, local_stamp, now);
}

void FairOrderingService::hold_back(EmissionRecord&& record,
                                    std::uint32_t shard) {
  holdback_.emplace_back(std::move(record), shard);
  std::push_heap(holdback_.begin(), holdback_.end(), MergeAfter{});
}

std::size_t FairOrderingService::release_merged(TimePoint min_next_safe,
                                                bool release_all,
                                                EmissionSink& sink) {
  // The holdback is a min-heap on (safe_time, shard, rank); keys are
  // unique ((shard, rank) is — each shard's ranks are strictly
  // increasing), so popping while the root clears the gate releases in
  // exactly the order the former whole-holdback stable_sort produced, at
  // O(released · log H) per round instead of O(H log H).
  std::size_t released = 0;
  while (!holdback_.empty()) {
    const auto& [record, shard_tag] = holdback_.front();
    // Strictly earlier than every shard's next pending batch. This is the
    // best gate the shards can offer, not an absolute one — rank-blocked
    // batches and stragglers landing on currently-empty shards can still
    // emit behind records released here (both caveats documented on
    // DrainPolicy, both bounded by the p_safe machinery).
    if (!release_all && !(record.safe_time < min_next_safe)) break;
    std::pop_heap(holdback_.begin(), holdback_.end(), MergeAfter{});
    sink.on_emission(std::move(holdback_.back().first),
                     holdback_.back().second);
    holdback_.pop_back();
    ++released;
  }
  return released;
}

std::size_t FairOrderingService::drain_sequential(TimePoint now,
                                                  bool flush_all,
                                                  EmissionSink& sink) {
  if (drain_policy_ == DrainPolicy::kShardLocal) {
    std::size_t emitted = 0;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s]) continue;
      emitted += flush_all ? shards_[s]->flush(now, sink, s)
                           : shards_[s]->poll(now, sink, s);
    }
    return emitted;
  }
  // Global merge: collect into the holdback, then release what the gate
  // allows.
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]) continue;
    auto collect = [this, s](EmissionRecord&& record, std::uint32_t) {
      hold_back(std::move(record), s);
    };
    CallbackSink<decltype(collect)> collector(collect);
    if (flush_all) {
      shards_[s]->flush(now, collector, s);
    } else {
      shards_[s]->poll(now, collector, s);
    }
  }
  TimePoint min_next = TimePoint::infinite_future();
  for (const auto& shard : shards_) {
    if (shard) min_next = std::min(min_next, shard->next_safe_time());
  }
  return release_merged(min_next, flush_all, sink);
}

std::size_t FairOrderingService::drain_threaded(TimePoint now, bool flush_all,
                                                EmissionSink& sink) {
  std::lock_guard<std::mutex> lock(threading_->control);
  // Broadcast so all shards drain + emit concurrently, await the acks,
  // then stream the queues in shard index order.
  threading_->broadcast_and_await(flush_all ? ShardWorker::Cmd::kFlush
                                            : ShardWorker::Cmd::kPoll,
                                  now);
  std::size_t delivered = 0;
  TimePoint min_next = TimePoint::infinite_future();
  for (std::uint32_t s = 0; s < threading_->workers.size(); ++s) {
    ShardWorker* worker = threading_->workers[s].get();
    if (!worker) continue;
    min_next = std::min(min_next, worker->reported_next_safe);
    std::vector<EmissionRecord> records;
    {
      std::lock_guard<std::mutex> queue_lock(worker->emissions_mutex);
      records.swap(worker->emissions);
    }
    for (EmissionRecord& record : records) {
      if (drain_policy_ == DrainPolicy::kShardLocal) {
        sink.on_emission(std::move(record), s);
        ++delivered;
      } else {
        hold_back(std::move(record), s);
      }
    }
  }
  if (drain_policy_ == DrainPolicy::kGlobalMerge) {
    delivered += release_merged(min_next, flush_all, sink);
  }
  return delivered;
}

std::size_t FairOrderingService::poll(TimePoint now, EmissionSink& sink) {
  if (threading_) return drain_threaded(now, /*flush_all=*/false, sink);
  return drain_sequential(now, /*flush_all=*/false, sink);
}

std::size_t FairOrderingService::flush(TimePoint now, EmissionSink& sink) {
  if (threading_) return drain_threaded(now, /*flush_all=*/true, sink);
  return drain_sequential(now, /*flush_all=*/true, sink);
}

void FairOrderingService::quiesce() {
  if (!threading_) return;
  std::lock_guard<std::mutex> lock(threading_->control);
  threading_->broadcast_and_await(ShardWorker::Cmd::kBarrier, TimePoint{});
}

// The threaded-mode accessors never touch live shard state: a producer
// may enqueue right after the barrier ack and put the worker back to
// mutating its sequencer, so they read the worker's ack-time snapshots
// instead, entirely under the control mutex.

TimePoint FairOrderingService::next_safe_time() const {
  if (threading_) {
    std::lock_guard<std::mutex> lock(threading_->control);
    threading_->broadcast_and_await(ShardWorker::Cmd::kBarrier, TimePoint{});
    TimePoint earliest = TimePoint::infinite_future();
    for (const auto& worker : threading_->workers) {
      if (worker) earliest = std::min(earliest, worker->reported_next_safe);
    }
    return earliest;
  }
  TimePoint earliest = TimePoint::infinite_future();
  for (const auto& shard : shards_) {
    if (shard) earliest = std::min(earliest, shard->next_safe_time());
  }
  return earliest;
}

TimePoint FairOrderingService::next_safe_time(std::uint32_t shard) const {
  TOMMY_EXPECTS(shard < shards_.size());
  if (threading_) {
    std::lock_guard<std::mutex> lock(threading_->control);
    threading_->broadcast_and_await(ShardWorker::Cmd::kBarrier, TimePoint{});
    const auto& worker = threading_->workers[shard];
    return worker ? worker->reported_next_safe : TimePoint::infinite_future();
  }
  const auto& seq = shards_[shard];
  return seq ? seq->next_safe_time() : TimePoint::infinite_future();
}

std::size_t FairOrderingService::pending_count() const {
  if (threading_) {
    std::lock_guard<std::mutex> lock(threading_->control);
    threading_->broadcast_and_await(ShardWorker::Cmd::kBarrier, TimePoint{});
    std::size_t pending = 0;
    for (const auto& worker : threading_->workers) {
      if (worker) pending += worker->reported_pending;
    }
    return pending;
  }
  std::size_t pending = 0;
  for (const auto& shard : shards_) {
    if (shard) pending += shard->pending_count();
  }
  return pending;
}

std::size_t FairOrderingService::fairness_violations() const {
  if (threading_) {
    std::lock_guard<std::mutex> lock(threading_->control);
    threading_->broadcast_and_await(ShardWorker::Cmd::kBarrier, TimePoint{});
    std::size_t violations = 0;
    for (const auto& worker : threading_->workers) {
      if (worker) violations += worker->reported_violations;
    }
    return violations;
  }
  std::size_t violations = 0;
  for (const auto& shard : shards_) {
    if (shard) violations += shard->fairness_violations();
  }
  return violations;
}

std::size_t FairOrderingService::held_back_count() const {
  auto count = [this] {
    std::size_t messages = 0;
    for (const auto& [record, shard] : holdback_) {
      messages += record.batch.messages.size();
    }
    return messages;
  };
  if (!threading_) return count();
  std::lock_guard<std::mutex> lock(threading_->control);
  return count();
}

// ── Live reconfiguration ────────────────────────────────────────────────

void FairOrderingService::expect_client(ClientId client) {
  TOMMY_EXPECTS(registry_.contains(client));  // announce first, then join
  if (expects_client(client)) return;
  std::lock_guard<std::mutex> lock(reconfig_.mutex);
  auto& pending = reconfig_.pending_clients;
  if (std::find(pending.begin(), pending.end(), client) == pending.end()) {
    pending.push_back(client);
  }
}

bool FairOrderingService::reconfig_pending() const {
  if (registry_.generation() != primed_generation()) return true;
  std::lock_guard<std::mutex> lock(reconfig_.mutex);
  return !reconfig_.pending_clients.empty();
}

void FairOrderingService::join_primer() {
  std::thread primer;
  {
    std::lock_guard<std::mutex> lock(reconfig_.mutex);
    primer.swap(reconfig_.primer);
  }
  if (primer.joinable()) primer.join();
}

void FairOrderingService::start_prime_locked() {
  TOMMY_ASSERT(!reconfig_.priming);
  // The previous primer (if any) already left its critical section
  // (priming is false), so joining the handle under the mutex is safe.
  if (reconfig_.primer.joinable()) reconfig_.primer.join();
  reconfig_.priming = true;
  reconfig_.ready.store(false, std::memory_order_release);
  reconfig_.staged.reset();
  reconfig_.primer = std::thread([this] {
    // Prime against a moving registry: build_fast_tables records the
    // generation at build START, so a prime torn by a concurrent
    // announce reads as stale here and simply goes again.
    auto engine = std::make_shared<PrecedingEngine>(
        registry_, online_config_.preceding);
    do {
      engine->prime(online_config_.threshold, online_config_.p_safe,
                    prefill_engines_);
    } while (engine->fast_generation() != registry_.generation());
    std::lock_guard<std::mutex> lock(reconfig_.mutex);
    reconfig_.staged = std::move(engine);
    reconfig_.priming = false;
    reconfig_.ready.store(true, std::memory_order_release);
  });
}

std::uint64_t FairOrderingService::request_reconfig() {
  const std::uint64_t target = registry_.generation();
  std::lock_guard<std::mutex> lock(reconfig_.mutex);
  if (reconfig_.pending_clients.empty() && target == primed_generation()) {
    return target;  // caught up; nothing to stage
  }
  if (!reconfig_.priming &&
      !reconfig_.ready.load(std::memory_order_acquire)) {
    start_prime_locked();
  }
  return target;
}

bool FairOrderingService::try_install_reconfig() {
  std::shared_ptr<const PrecedingEngine> staged;
  std::vector<ClientId> joins;
  {
    std::lock_guard<std::mutex> lock(reconfig_.mutex);
    if (!reconfig_.ready.load(std::memory_order_acquire)) return false;
    // Exactly-once handoff: whoever clears `ready` owns the install.
    reconfig_.ready.store(false, std::memory_order_relaxed);
    staged = std::move(reconfig_.staged);
    reconfig_.staged.reset();
    if (staged->fast_generation() != registry_.generation()) {
      // An announce landed after the prime finished: stage again.
      start_prime_locked();
      return false;
    }
    joins = std::move(reconfig_.pending_clients);
    reconfig_.pending_clients.clear();
  }
  install_staged(std::move(staged), std::move(joins));
  return true;
}

void FairOrderingService::install_staged(
    std::shared_ptr<const PrecedingEngine> staged,
    std::vector<ClientId> joins) {
  const auto shard_total = static_cast<std::uint32_t>(shards_.size());
  // Route the joining clients. Install is effectively single-threaded —
  // the staged handoff admits one installer at a time, and only
  // installers write the topology — so the unlocked read here races
  // nothing.
  std::vector<std::vector<ClientId>> added(shard_total);
  std::vector<std::pair<ClientId, std::uint32_t>> new_routes;
  for (ClientId c : joins) {
    if (shard_by_client_.contains(c)) continue;  // lost a re-queue race
    const std::uint32_t s = router_->route(c, shard_total);
    TOMMY_EXPECTS(s < shard_total);
    added[s].push_back(c);
    new_routes.emplace_back(c, s);
  }

  if (threading_) {
    // Quiesce + swap: under the control lock no poll/flush interleaves;
    // every worker drains its rings to empty, then rebinds its shard to
    // the staged engine on its own thread (Cmd::kRebind).
    std::lock_guard<std::mutex> control(threading_->control);
    for (auto& worker : threading_->workers) {
      if (!worker) continue;
      worker->rebind_target = staged;
      worker->rebind_clients = std::move(added[worker->shard_index]);
    }
    threading_->broadcast_and_await(ShardWorker::Cmd::kRebind, TimePoint{});
    // Publish: first-time-populated shards get a sequencer and a worker,
    // then routes/engine/generation/epoch flip in one unique-lock
    // section. Readers see the old epoch or the new one, never a mix.
    std::unique_lock<std::shared_mutex> topo(topology_mutex_);
    for (std::uint32_t s = 0; s < shard_total; ++s) {
      if (added[s].empty() || shards_[s]) continue;
      shards_[s] = std::make_unique<OnlineSequencer>(
          staged, added[s], online_config_, /*pinned=*/true);
      auto worker = std::make_unique<ShardWorker>();
      worker->shard = shards_[s].get();
      worker->shard_index = s;
      worker->thread = std::thread([w = worker.get()] { w->run(); });
      threading_->workers[s] = std::move(worker);
    }
    engine_ = staged;
    for (const auto& [c, s] : new_routes) shard_by_client_.emplace(c, s);
    primed_generation_.store(staged->fast_generation(),
                             std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }

  // Sequential: rebind in place. Callers serialize reconfiguration with
  // ingest exactly as they serialize poll/flush.
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  for (std::uint32_t s = 0; s < shard_total; ++s) {
    if (shards_[s]) {
      shards_[s]->rebind_engine(staged, added[s]);
    } else if (!added[s].empty()) {
      shards_[s] = std::make_unique<OnlineSequencer>(
          staged, added[s], online_config_, /*pinned=*/false);
    }
  }
  engine_ = staged;
  for (const auto& [c, s] : new_routes) shard_by_client_.emplace(c, s);
  primed_generation_.store(staged->fast_generation(),
                           std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void FairOrderingService::reconfigure() {
  while (reconfig_pending()) {
    request_reconfig();
    join_primer();  // wait for the staged engine
    try_install_reconfig();
  }
}

void FairOrderingService::close_session(Session& session) {
  if (threading_) {
    TOMMY_EXPECTS(session.lane_ != nullptr);
    IngestOp op;
    op.kind = IngestOp::Kind::kRetire;
    session.lane_->worker->push(*session.lane_, op);
    session.lane_ = nullptr;  // the handle is dead from here on
    return;
  }
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  shards_[session.shard_]->retire_client(session.client_);
}

const OnlineSequencer& FairOrderingService::shard(std::uint32_t index) const {
  TOMMY_EXPECTS(has_shard(index));
  return *shards_[index];
}

OnlineSequencer& FairOrderingService::shard(std::uint32_t index) {
  TOMMY_EXPECTS(has_shard(index));
  return *shards_[index];
}

}  // namespace tommy::core
