#include "core/service.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tommy::core {

RangeRouter::RangeRouter(ClientId lo, ClientId hi)
    : lo_(lo.value()),
      span_(static_cast<std::uint64_t>(hi.value()) - lo.value() + 1) {
  TOMMY_EXPECTS(lo <= hi);
}

std::uint32_t RangeRouter::route(ClientId client,
                                 std::uint32_t shard_count) const {
  TOMMY_EXPECTS(shard_count > 0);
  const std::uint64_t id = client.value();
  if (id < lo_) return 0;
  const std::uint64_t offset = id - lo_;
  if (offset >= span_) return shard_count - 1;
  // Equal-width ranges: shard = ⌊offset · n / span⌋ < n.
  return static_cast<std::uint32_t>(offset * shard_count / span_);
}

std::uint32_t ModuloRouter::route(ClientId client,
                                  std::uint32_t shard_count) const {
  TOMMY_EXPECTS(shard_count > 0);
  return client.value() % shard_count;
}

FairOrderingService::FairOrderingService(
    const ClientRegistry& registry, std::vector<ClientId> expected_clients,
    ServiceConfig config)
    : router_(std::move(config.router)) {
  TOMMY_EXPECTS(config.shard_count > 0);
  TOMMY_EXPECTS(!expected_clients.empty());

  if (!router_) {
    ClientId lo = expected_clients.front();
    ClientId hi = expected_clients.front();
    for (ClientId c : expected_clients) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    router_ = std::make_shared<RangeRouter>(lo, hi);
  }

  // One engine for every shard, primed once; its derived tables are a
  // function of the registry alone, so every shard reads the same data.
  auto engine = std::make_shared<PrecedingEngine>(registry,
                                                  config.online.preceding);
  if (!config.online.reference_mode) {
    engine->prime(config.online.threshold, config.online.p_safe);
  }
  engine_ = engine;

  // Static partition: route once per expected client, preserving the
  // caller's order within each shard (so a 1-shard service sees exactly
  // the same expected-client vector as a bare sequencer would).
  std::vector<std::vector<ClientId>> partition(config.shard_count);
  for (ClientId c : expected_clients) {
    const std::uint32_t s = router_->route(c, config.shard_count);
    TOMMY_EXPECTS(s < config.shard_count);
    if (shard_by_client_.emplace(c, s).second) {
      partition[s].push_back(c);
    }
  }

  shards_.resize(config.shard_count);
  for (std::uint32_t s = 0; s < config.shard_count; ++s) {
    if (partition[s].empty()) continue;  // unpopulated shard
    shards_[s] = std::make_unique<OnlineSequencer>(
        engine_, std::move(partition[s]), config.online);
  }
}

FairOrderingService::Session FairOrderingService::open_session(
    ClientId client) {
  const std::uint32_t s = shard_of(client);
  Session session;
  session.inner_ = shards_[s]->open_session(client);
  session.shard_ = s;
  return session;
}

std::uint32_t FairOrderingService::shard_of(ClientId client) const {
  const auto it = shard_by_client_.find(client);
  TOMMY_EXPECTS(it != shard_by_client_.end());  // unknown clients are a
                                                // config error
  return it->second;
}

void FairOrderingService::submit(const Message& m) {
  shards_[shard_of(m.client)]->on_message(m);
}

void FairOrderingService::heartbeat(ClientId client, TimePoint local_stamp,
                                    TimePoint now) {
  shards_[shard_of(client)]->on_heartbeat(client, local_stamp, now);
}

std::size_t FairOrderingService::poll(TimePoint now, EmissionSink& sink) {
  std::size_t emitted = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]) continue;
    emitted += shards_[s]->poll(now, sink, s);
  }
  return emitted;
}

std::size_t FairOrderingService::flush(TimePoint now, EmissionSink& sink) {
  std::size_t emitted = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]) continue;
    emitted += shards_[s]->flush(now, sink, s);
  }
  return emitted;
}

TimePoint FairOrderingService::next_safe_time() const {
  TimePoint earliest = TimePoint::infinite_future();
  for (const auto& shard : shards_) {
    if (shard) earliest = std::min(earliest, shard->next_safe_time());
  }
  return earliest;
}

std::size_t FairOrderingService::pending_count() const {
  std::size_t pending = 0;
  for (const auto& shard : shards_) {
    if (shard) pending += shard->pending_count();
  }
  return pending;
}

std::size_t FairOrderingService::fairness_violations() const {
  std::size_t violations = 0;
  for (const auto& shard : shards_) {
    if (shard) violations += shard->fairness_violations();
  }
  return violations;
}

const OnlineSequencer& FairOrderingService::shard(std::uint32_t index) const {
  TOMMY_EXPECTS(has_shard(index));
  return *shards_[index];
}

OnlineSequencer& FairOrderingService::shard(std::uint32_t index) {
  TOMMY_EXPECTS(has_shard(index));
  return *shards_[index];
}

}  // namespace tommy::core
