// Threshold batching (§3.4): given a linear order of messages, a batch
// boundary is placed between adjacent messages i, j exactly when the
// preceding probability p(i, j) exceeds the confidence threshold; messages
// the sequencer cannot confidently separate stay in one batch. Ranks are
// dense from 0 in order.
#pragma once

#include <functional>
#include <vector>

#include "core/message.hpp"

namespace tommy::core {

using PairProbabilityFn =
    std::function<double(const Message&, const Message&)>;

/// The predicate form of the boundary question: "does a precede b with
/// probability above the threshold?". Batching never needs the
/// probability itself, only this answer — which the primed
/// PrecedingEngine reduces to one subtraction and one compare against a
/// per-client-pair critical gap (see preceding.hpp). Callers that do hold
/// raw probabilities wrap them as `p(a, b) > threshold`.
using PairConfidenceFn =
    std::function<bool(const Message&, const Message&)>;

/// How batch boundaries are decided along the linear order.
enum class BatchRule {
  /// §3.4 / Appendix B: boundary between adjacent messages i, j iff
  /// p(i, j) > threshold. Cheap (one check per adjacency) but a
  /// high-uncertainty message only merges with its direct neighbours —
  /// a pair two positions apart may straddle a boundary with p below the
  /// threshold.
  kAdjacent,
  /// Closure rule (Appendix C semantics): a boundary is placed at a
  /// position only when EVERY (earlier, later) pair across it clears the
  /// threshold. This guarantees min_cross_batch_probability > threshold
  /// for the whole result, and reproduces the worked online example where
  /// one high-uncertainty message pulls temporally-distinct messages from
  /// another client into its batch. O(n²) probability queries.
  kClosure,
};

/// Cuts `ordered` into rank-ordered batches. `threshold` must lie in
/// (0.5, 1.0) — at or below 0.5 every adjacent pair would separate, at 1.0
/// nothing would.
[[nodiscard]] std::vector<Batch> batch_by_threshold(
    std::vector<Message> ordered, const PairProbabilityFn& probability,
    double threshold, BatchRule rule = BatchRule::kAdjacent);

/// Predicate form: `confident(a, b)` answers p(a, b) > threshold directly
/// (no probability materialized). The probability overload above is this
/// one with the wrapped comparison.
[[nodiscard]] std::vector<Batch> batch_by_confidence(
    std::vector<Message> ordered, const PairConfidenceFn& confident,
    BatchRule rule = BatchRule::kAdjacent);

/// Like batch_by_threshold but with pre-grouped messages that must never
/// be split (the SCC-condensation cycle policy): boundaries are only
/// considered between consecutive groups, judged on the boundary pair
/// (last message of the earlier group vs first of the later).
[[nodiscard]] std::vector<Batch> batch_groups_by_threshold(
    std::vector<std::vector<Message>> ordered_groups,
    const PairProbabilityFn& probability, double threshold);

/// Predicate form of batch_groups_by_threshold.
[[nodiscard]] std::vector<Batch> batch_groups_by_confidence(
    std::vector<std::vector<Message>> ordered_groups,
    const PairConfidenceFn& confident);

/// Diagnostic: the minimum preceding probability across any pair that the
/// batching claims to order (u in an earlier batch, v in a later batch).
/// A perfectly confident batching keeps this above the threshold; the
/// adjacent-pair rule does not guarantee that, which is what the
/// threshold-ablation bench quantifies.
[[nodiscard]] double min_cross_batch_probability(
    const std::vector<Batch>& batches, const PairProbabilityFn& probability);

}  // namespace tommy::core
