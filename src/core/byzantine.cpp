#include "core/byzantine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::core {

ByzantineGuard::ByzantineGuard(const ClientRegistry& registry,
                               ByzantineConfig config)
    : registry_(registry), config_(config) {
  TOMMY_EXPECTS(config.epsilon > 0.0 && config.epsilon < 0.5);
  TOMMY_EXPECTS(config.max_plausible_delay >= Duration::zero());
}

Plausibility ByzantineGuard::inspect(const Message& m) {
  const stats::Distribution& theta = registry_.offset_distribution(m.client);
  const double residual = (m.arrival - m.stamp).seconds();

  Counts& c = counts_[m.client];
  ++c.inspected;

  // residual = θ + delay, delay >= 0 (see header for the direction guide).
  const double lo = theta.quantile(config_.epsilon);
  const double hi =
      theta.quantile(1.0 - config_.epsilon) +
      config_.max_plausible_delay.seconds();

  if (residual > hi) {
    ++c.flagged;
    return Plausibility::kBackdated;
  }
  if (residual < lo) {
    ++c.flagged;
    return Plausibility::kForwardDated;
  }
  return Plausibility::kPlausible;
}

std::uint64_t ByzantineGuard::flagged_count(ClientId client) const {
  const auto it = counts_.find(client);
  return it == counts_.end() ? 0 : it->second.flagged;
}

std::uint64_t ByzantineGuard::inspected_count(ClientId client) const {
  const auto it = counts_.find(client);
  return it == counts_.end() ? 0 : it->second.inspected;
}

double ByzantineGuard::suspicion_score(ClientId client) const {
  const auto it = counts_.find(client);
  if (it == counts_.end() || it->second.inspected == 0) return 0.0;
  return static_cast<double>(it->second.flagged) /
         static_cast<double>(it->second.inspected);
}

std::vector<ClientId> ByzantineGuard::suspects(
    double min_score, std::uint64_t min_inspected) const {
  std::vector<ClientId> out;
  for (const auto& [client, counts] : counts_) {
    if (counts.inspected < min_inspected) continue;
    const double score = static_cast<double>(counts.flagged) /
                         static_cast<double>(counts.inspected);
    if (score >= min_score) out.push_back(client);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tommy::core
