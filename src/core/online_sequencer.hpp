// Online fair sequencing (§3.5, Appendix C).
//
// Messages stream in; the sequencer maintains a buffer of unemitted
// messages ordered by corrected stamp and repeatedly tries to emit the
// head batch. A batch B is emitted only when BOTH hold:
//
//  (Q1, safe emission) now >= T_b where T_b = max_{m in B} T^F_m and
//    P(T*_m < T^F_m) > p_safe. New arrivals that are not confidently
//    after every member of B merge into B (extending T_b), reproducing
//    Appendix C's behaviour where one high-uncertainty message pulls
//    temporally-distinct messages into its batch.
//
//  (Q2, completeness) for every expected client c the sequencer has seen a
//    message or heartbeat (over the per-client FIFO channel) whose stamp
//    implies — with probability >= p_safe — that any future message from c
//    must have true time past T_b: hw_c + Q_{θc}(1 − p_safe) >= T_b.
//    A client silent longer than `client_silence_timeout` is dropped from
//    this gate (the liveness trade-off §3.5 names: "a failed client may
//    halt the sequencer").
//
// Arrivals that confidently belonged at or before an already-emitted rank
// are counted as fairness violations (they are assigned to the next batch;
// the p_safe knob controls how rare this is).
//
// ── Ingest surface: sessions ────────────────────────────────────────────
//
// The hot ingest path is the per-connection `Session` handle returned by
// `open_session(client)`. A session caches the client's registry dense
// index, its completeness-gate slot, and the per-client corrected-stamp /
// safe-emission offsets once at open, so `session.submit(...)` and
// `session.heartbeat(...)` touch no hash map at all: the only per-message
// work beyond the buffer insert is one generation-counter compare (which
// detects registry re-announces and refreshes the cached offsets). The
// original `on_message` / `on_heartbeat` entry points are retained as
// thin wrappers over an internal session table; they cost one ClientId
// hash per call for the table lookup. Prefer sessions in new code.
//
// ── Hot-path design (critical gaps + incremental closure) ───────────────
//
// The default (fast) implementation never evaluates a probability on the
// hot path. Every buffered entry caches its corrected stamp, safe-emission
// time and dense client index once at ingest; every "confidently after"
// question is then a subtraction and a comparison against the engine's
// precomputed per-client-pair critical gap (see preceding.hpp for the
// derivation). The closure computation for the head batch maintains this
// invariant between polls:
//
//   head_valid_ ⟹ head_size_ = |head batch under BatchRule::kClosure| and
//   head_safe_  = max safe-emission time over that batch, for the buffer
//   as it currently stands.
//
// The cached pair survives across inserts because the closure is monotone
// under insertion beyond the head: new entries can never *unblock* an
// earlier cut (uncertain pairs only accumulate), so an insert invalidates
// the pair only when it (a) lands inside the current head batch — detected
// by one key compare against the cached last-head-row key — or (b) forms
// an uncertain pair with some head row — detected exactly, by scanning
// head rows nearest-first and stopping once the corrected-stamp gap
// exceeds the engine's global maximum critical gap. Recomputation itself
// is windowed the same way (a row's uncertain partners all lie within its
// max critical gap), so a poll costs O(batch + uncertainty window) instead
// of the naive O(n²) sweep.
//
// The pending buffer itself is a HoldbackBuffer — a counted chunked
// ordered sequence with O(log n)-comparison, bounded-move inserts — so a
// deep backlog (the adversarial regime, where uncertain messages pile up
// behind a closed gate) no longer degrades every insert to O(backlog)
// element moves the way the former sorted deque did. Head emission pops a
// prefix (whole chunks in O(1)); the insert-time head-boundary check needs
// no random access (one key compare + an O(head/B) prefix walk).
//
// The completeness gate (Q2) is a min-frontier heap rather than a scan:
// every heard, gate-active client keeps one node keyed by its cached
// frontier hw_c + Q_c(1 − p_safe), so an emission attempt peeks the root
// (the minimum frontier) in O(1) and each high-water advance is an
// O(log n) sift. Clients dropped by the silence timeout are removed at
// the gate check and re-enter with their next message/heartbeat; because
// that removal is only valid for forward-moving gate queries, a query
// earlier than the latest one falls back to an exact scan over the
// cached frontiers (see completeness_satisfied).
//
// `OnlineConfig::reference_mode` retains the naive implementation —
// from-scratch O(n²) closure per poll, per-query probability evaluation —
// as the semantic reference; the randomized equivalence tests assert the
// two modes emit bit-identical batch sequences (and that the session API
// is bit-identical to the legacy entry points in both modes).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/batching.hpp"
#include "core/holdback_buffer.hpp"
#include "core/preceding.hpp"
#include "core/sequencer.hpp"

namespace tommy::core {

struct OnlineConfig {
  /// Batch-boundary confidence (§3.4).
  double threshold{0.75};
  /// Safe-emission confidence (§3.5; e.g. 0.999).
  double p_safe{0.999};
  /// Drop a client from the completeness gate after this much sequencer
  /// time without any message/heartbeat. Infinite = never (strict
  /// fairness, no liveness under client failure). With a finite timeout a
  /// client that has NEVER spoken is excluded immediately — startup does
  /// not block on clients that may not exist; it re-enters the gate with
  /// its first message/heartbeat.
  Duration client_silence_timeout{Duration::infinity()};
  /// Use the retained naive implementation (per-query probabilities,
  /// from-scratch closure each poll). Slow; exists as the semantic
  /// reference the equivalence tests compare the fast path against.
  bool reference_mode{false};
  /// Engine configuration — only consulted when the sequencer builds its
  /// own engine (the registry constructor). The shared-engine constructor
  /// uses the engine's existing configuration instead.
  PrecedingConfig preceding{};
};

/// One element of a batched ingest (Session::submit_batch): the same
/// (stamp, id, arrival) triple submit() takes, as data.
struct Submission {
  TimePoint stamp;   // client's local clock at generation
  MessageId id;
  TimePoint arrival; // sequencer clock at receipt (the `now` of submit)
};

/// One emitted batch plus emission metadata.
struct EmissionRecord {
  Batch batch;
  TimePoint emitted_at;  // sequencer clock when emitted
  TimePoint safe_time;   // the T_b that gated it
};

/// Consumer of emitted batches (the allocation-free alternative to the
/// vector-returning poll/flush overloads): each record is handed over by
/// rvalue exactly once, in rank order per shard. `shard` is the emitting
/// shard's index when polled through a FairOrderingService; a bare
/// OnlineSequencer always reports shard 0.
class EmissionSink {
 public:
  virtual ~EmissionSink() = default;
  virtual void on_emission(EmissionRecord&& record, std::uint32_t shard) = 0;
};

class OnlineSequencer {
 public:
  /// Per-connection ingest handle; see the file header. Cheap to copy —
  /// it is a pointer plus cached per-client constants. Valid as long as
  /// the sequencer it came from is alive (the sequencer is pinned in
  /// memory: it is neither copyable nor movable). A handle survives
  /// registry re-announces of its client: the cached offsets refresh at
  /// the next call via the registry generation counter.
  class Session {
   public:
    Session() = default;

    /// Ingests one message stamped `stamp` (the client's local clock at
    /// generation) arriving at sequencer time `now`. Exactly equivalent
    /// to on_message({id, client(), stamp, now}). `now` must be
    /// non-decreasing across the owning sequencer's ingests (FIFO
    /// channels deliver in order).
    void submit(TimePoint stamp, MessageId id, TimePoint now);

    /// Batched submit: equivalent to calling submit(item...) for every
    /// element in order, but the per-call overhead (re-prime check,
    /// generation compare, completeness-state maintenance) is paid once
    /// per batch instead of once per message. Arrivals must be
    /// non-decreasing within the span and respect the sequencer-wide
    /// FIFO contract like submit().
    void submit_batch(std::span<const Submission> items);

    /// Like submit/submit_batch but exempt from the cross-session FIFO
    /// arrival check: `now` may be out of order w.r.t. OTHER sessions'
    /// ingests (the sequencer tracks max arrival instead of asserting
    /// monotonicity). For consumers that drain several per-session FIFO
    /// queues in arbitrary order — the FairOrderingService shard workers
    /// do exactly this. Emissions are unaffected: between two polls the
    /// buffer contents, completeness state and violation counts are
    /// ingest-order-independent (the buffer orders by corrected stamp,
    /// gate state is max-merged, violations compare each entry against
    /// the already-emitted set only).
    void submit_relaxed(TimePoint stamp, MessageId id, TimePoint now);
    void submit_batch_relaxed(std::span<const Submission> items);

    /// Ingests a heartbeat carrying the client's local `local_stamp`.
    void heartbeat(TimePoint local_stamp, TimePoint now);

    [[nodiscard]] ClientId client() const { return client_; }

   private:
    friend class OnlineSequencer;

    OnlineSequencer* sequencer_{nullptr};
    ClientId client_{};
    std::uint32_t cindex_{0};       // registry dense index
    std::uint32_t slot_{0};         // completeness-gate slot
    std::uint64_t generation_{0};   // registry generation of the offsets
    double mean_offset_{0.0};       // E[θ]  (corrected = stamp + mean)
    double safe_offset_{0.0};       // Q_θ(p_safe)
  };

  /// `expected_clients` is the fixed, known client set (§3.5's assumption
  /// for answering Q2). The registry must cover all of them. Builds a
  /// private PrecedingEngine from `config.preceding`.
  OnlineSequencer(const ClientRegistry& registry,
                  std::vector<ClientId> expected_clients,
                  OnlineConfig config = {});

  /// Shard constructor: runs against a caller-owned engine (and its
  /// registry), so several sequencers can share one primed engine's flat
  /// tables and Δθ caches — the FairOrderingService path.
  /// `config.preceding` is ignored; the engine's own configuration rules.
  ///
  /// With `pinned` the sequencer treats the engine as an immutable epoch:
  /// it never re-primes, and sessions revalidate against the engine's
  /// fast_generation() instead of the live registry generation, so a
  /// concurrent registry announce cannot perturb a running shard. The
  /// engine must be prefill-primed for (config.threshold, config.p_safe);
  /// moving to a newer epoch is an explicit rebind_engine() call. This is
  /// the worker-thread mode of the FairOrderingService.
  OnlineSequencer(std::shared_ptr<const PrecedingEngine> engine,
                  std::vector<ClientId> expected_clients,
                  OnlineConfig config = {}, bool pinned = false);

  // Sessions cache a pointer to the sequencer; pin it in memory.
  OnlineSequencer(const OnlineSequencer&) = delete;
  OnlineSequencer& operator=(const OnlineSequencer&) = delete;

  /// Opens an ingest handle for `client` (which must be one of the
  /// expected clients — anything else is a precondition failure). May be
  /// called repeatedly; handles are independent and all stay valid.
  [[nodiscard]] Session open_session(ClientId client);

  /// Ingests a message; `m.arrival` must be the current sequencer time
  /// (non-decreasing across calls — FIFO channels deliver in order).
  /// Deprecated in favour of Session::submit (one extra hash per call).
  void on_message(const Message& m);

  /// Ingests a heartbeat carrying client `c`'s local stamp.
  /// Deprecated in favour of Session::heartbeat (one extra hash per call).
  void on_heartbeat(ClientId c, TimePoint local_stamp, TimePoint now);

  /// Attempts emissions at sequencer time `now`; returns every batch that
  /// became safe, in rank order.
  [[nodiscard]] std::vector<EmissionRecord> poll(TimePoint now);

  /// Sink-style poll: hands each emitted batch to `sink` (tagged with
  /// `shard_tag`) instead of accumulating a vector. Returns the number of
  /// batches emitted.
  std::size_t poll(TimePoint now, EmissionSink& sink,
                   std::uint32_t shard_tag = 0);

  /// Shutdown path: emits everything still buffered as properly-batched
  /// ranks, ignoring the safe-emission and completeness gates. Use when
  /// the stream has provably ended (e.g. simulation teardown, market
  /// close); fairness w.r.t. still-in-flight messages is obviously not
  /// guaranteed. Ingest may continue afterwards: later arrivals simply
  /// start the next batch (and are counted as violations if they
  /// confidently belonged at an already-emitted rank).
  [[nodiscard]] std::vector<EmissionRecord> flush(TimePoint now);

  /// Sink-style flush; returns the number of batches emitted.
  std::size_t flush(TimePoint now, EmissionSink& sink,
                    std::uint32_t shard_tag = 0);

  /// T_b of the current head batch (infinite future if buffer empty) —
  /// callers can schedule the next poll at this instant.
  [[nodiscard]] TimePoint next_safe_time() const;

  [[nodiscard]] std::size_t pending_count() const {
    return config_.reference_mode ? buffer_.size() : fast_buffer_.size();
  }
  [[nodiscard]] Rank next_rank() const { return next_rank_; }

  /// Messages that arrived after a batch they confidently belonged in (or
  /// before) had already been emitted.
  [[nodiscard]] std::size_t fairness_violations() const {
    return fairness_violations_;
  }

  /// Clients currently excluded from the completeness gate by the
  /// silence timeout.
  [[nodiscard]] std::vector<ClientId> timed_out_clients(TimePoint now) const;

  /// Installs a new engine epoch: swaps the engine handle, registers any
  /// newly-expected clients (growing the completeness gate), and
  /// refreshes every cached constant — buffered entries, emitted-set
  /// entries, client frontiers, the gate heap — exactly as a re-prime
  /// would. Sessions refresh themselves lazily at their next call via the
  /// generation compare. The caller must guarantee no concurrent use of
  /// this sequencer (in the threaded service the owning worker runs this
  /// between drains); in pinned mode the new engine must be
  /// prefill-primed for this sequencer's (threshold, p_safe).
  void rebind_engine(std::shared_ptr<const PrecedingEngine> engine,
                     std::span<const ClientId> new_clients);

  /// Marks `client` as departed: it is removed from the completeness-gate
  /// frontier immediately (instead of stalling emissions until the
  /// silence timeout — or forever, with an infinite timeout). Already-
  /// buffered messages from the client still emit normally. A later
  /// message or heartbeat revives the client into the gate. Idempotent.
  void retire_client(ClientId client);

  /// True while `client` is marked departed (see retire_client).
  [[nodiscard]] bool is_departed(ClientId client) const;

  [[nodiscard]] const ClientRegistry& registry() const { return registry_; }

  /// The engine epoch this sequencer currently runs against.
  [[nodiscard]] const PrecedingEngine& engine() const { return *engine_; }

 private:
  /// A buffered (or recently emitted) message with its per-ingest cached
  /// constants: corrected stamp (the sort key), safe-emission time, and
  /// the dense client index keying the engine's flat tables.
  struct Buffered {
    Message msg;
    double corrected{0.0};
    TimePoint safe_time{TimePoint::epoch()};
    std::uint32_t cindex{0};
  };

  /// The buffer's strict weak order: (corrected stamp, message id). Ids
  /// are unique per stream, so keys are unique and every sort/insert
  /// order is deterministic.
  struct BufferedLess {
    bool operator()(const Buffered& lhs, const Buffered& rhs) const {
      if (lhs.corrected != rhs.corrected) {
        return lhs.corrected < rhs.corrected;
      }
      return lhs.msg.id < rhs.msg.id;
    }
  };

  struct ClientState {
    ClientId id;
    std::uint32_t cindex{0};
    TimePoint high_water{TimePoint(-std::numeric_limits<double>::infinity())};
    TimePoint last_heard{TimePoint(-std::numeric_limits<double>::infinity())};
    /// Cached completeness frontier hw + Q(1 − p_safe) (fast mode only;
    /// refreshed on every high-water advance and on re-prime).
    TimePoint frontier{TimePoint(-std::numeric_limits<double>::infinity())};
    bool heard{false};
    /// Departed clients (retire_client) are excluded from the
    /// completeness gate until they speak again.
    bool departed{false};
  };

  void init_expected_clients();
  /// Adds one client to the expected set mid-life (rebind_engine): grows
  /// slot_by_cindex_ / clients_ / heap_pos_ / session_table_. No-op for
  /// clients already expected.
  void register_client(ClientId client);
  /// Completeness-gate slot of `client` — the one remaining hash on the
  /// legacy entry points (registry id → dense index, then a flat array).
  /// Precondition: `client` is an expected client.
  [[nodiscard]] std::uint32_t slot_of(ClientId client) const;
  /// The generation sessions revalidate against: the live registry
  /// generation normally, the engine's build generation when pinned (so
  /// announces only take effect at an explicit rebind).
  [[nodiscard]] std::uint64_t current_generation() const;
  /// Re-reads a session's cached per-client offsets from the engine's
  /// flat tables (fast mode) and stamps it with the current registry
  /// generation.
  void refresh_session(Session& session) const;
  /// The session-table ingest core every entry surface shares. `relaxed`
  /// skips the cross-session FIFO arrival assertion (see
  /// Session::submit_relaxed) and tracks max arrival instead.
  void session_submit(Session& session, TimePoint stamp, MessageId id,
                      TimePoint now, bool relaxed);
  void session_submit_batch(Session& session,
                            std::span<const Submission> items, bool relaxed);
  void session_heartbeat(Session& session, TimePoint local_stamp,
                         TimePoint now);
  /// Completeness-state maintenance after a client advanced its
  /// high-water/last-heard (fast mode: refreshes the cached frontier and
  /// fixes up the min-frontier heap).
  void touch_client(ClientState& state);
  /// Violation accounting + ordered buffer insert (both modes).
  void ingest(Buffered entry);
  void refresh_entry(Buffered& entry) const;
  /// Fast mode: re-primes the engine and refreshes cached entry constants
  /// after a registry re-announce (takes effect at the next ingest or
  /// poll). A re-announce can reorder corrected stamps relative to the
  /// stored buffer order, so the refresh re-sorts the buffer under the
  /// fresh keys — the sorted invariant (and with it every windowed early
  /// exit) holds unconditionally. Reference mode mirrors the same
  /// boundary: a registry generation change triggers
  /// resort_reference_buffer(), so both modes re-key and re-order at the
  /// first entry-point call after an announce and stay bit-identical.
  void maybe_reprime();
  /// The shared tail of maybe_reprime() and rebind_engine(): refreshes
  /// every cached constant derived from the engine tables (buffer —
  /// re-keyed, re-sorted and rebuilt — emitted set, client frontiers,
  /// gate heap, head cache).
  void refresh_epoch_state();
  /// Reference-mode analogue of refresh_epoch_state's buffer rebuild:
  /// re-sorts the deque under freshly evaluated corrected stamps and
  /// records the registry generation it is sorted for.
  void resort_reference_buffer();

  // Fast path.
  void insert_fast(Buffered entry);
  void recompute_head() const;
  [[nodiscard]] bool completeness_satisfied(TimePoint t_b, TimePoint now) const;
  /// Exact O(n) gate scan over the cached fast-mode frontiers; the
  /// fallback for out-of-order gate queries (see completeness_satisfied).
  [[nodiscard]] bool completeness_scan(TimePoint t_b, TimePoint now) const;

  // Min-frontier heap (fast mode; see completeness_satisfied). An indexed
  // binary min-heap over completeness-gate slots keyed by
  // clients_[slot].frontier: every heard, not-timed-out client has
  // exactly one node, so the gate is a peek at the root instead of a
  // scan over every expected client.
  void heap_sift_up(std::size_t pos) const;
  void heap_sift_down(std::size_t pos) const;
  void heap_insert(std::uint32_t slot) const;
  void heap_remove_top() const;
  /// General positional removal (retire_client needs to pull a node that
  /// is not the root).
  void heap_remove_at(std::size_t pos) const;
  void heap_rebuild() const;

  // Retained naive reference path.
  [[nodiscard]] bool confidently_after(const Message& later,
                                       const Message& earlier) const;
  /// Size of the head batch under the closure rule (BatchRule::kClosure).
  [[nodiscard]] std::size_t head_batch_size_naive() const;
  [[nodiscard]] TimePoint safe_time_for_naive(std::size_t batch_size) const;
  [[nodiscard]] bool completeness_satisfied_naive(TimePoint t_b,
                                                  TimePoint now) const;

  std::size_t drain(TimePoint now, bool ignore_gates, EmissionSink& sink,
                    std::uint32_t shard_tag);
  [[nodiscard]] EmissionRecord take_head(std::size_t size, TimePoint t_b,
                                         TimePoint now);

  // engine_ptr_ owns (or co-owns) the engine; engine_ is the raw pointer
  // the hot path dereferences (re-seated only by rebind_engine, never
  // null). Declared in this order on purpose.
  std::shared_ptr<const PrecedingEngine> engine_ptr_;
  const PrecedingEngine* engine_;
  const ClientRegistry& registry_;
  OnlineConfig config_;
  /// Epoch-pinned mode (see the shared-engine constructor).
  bool pinned_{false};
  std::vector<ClientId> expected_clients_;
  std::vector<ClientState> clients_;  // parallel to expected_clients_
  /// Registry dense index → completeness-gate slot (kNoSlot = not an
  /// expected client). Dense replacement for the former
  /// unordered_map<ClientId, uint32_t> — the registry already assigns
  /// dense indices, so membership is one bounds check + one load.
  std::vector<std::uint32_t> slot_by_cindex_;
  /// Internal session table backing the legacy on_message/on_heartbeat
  /// wrappers; parallel to clients_.
  std::vector<Session> session_table_;

  /// Reference-mode pending buffer: the retained naive sorted sequence
  /// (per-comparison corrected-stamp inserts). Unused in fast mode.
  std::deque<Buffered> buffer_;  // sorted by (corrected stamp, id)
  /// Fast-mode pending buffer: chunked ordered structure, O(log n)
  /// comparisons + bounded moves per insert. Unused in reference mode.
  HoldbackBuffer<Buffered, BufferedLess> fast_buffer_;
  /// Registry generation buffer_ is currently sorted for (reference
  /// mode): maybe_reprime re-sorts when it trails the live generation.
  std::uint64_t ref_generation_{0};
  Rank next_rank_{0};
  std::vector<Buffered> last_emitted_;  // for violation detection
  std::size_t fairness_violations_{0};
  /// Latest ingest arrival seen; enforces the FIFO-delivery contract
  /// (`arrival`/`now` non-decreasing across message ingests).
  TimePoint last_arrival_{TimePoint(-std::numeric_limits<double>::infinity())};

  // Completeness min-frontier heap (fast path). heap_ holds gate slots
  // (indices into clients_) as a binary min-heap on the cached frontier;
  // heap_pos_[slot] is the slot's position in heap_ (kNotInHeap when the
  // client is unheard or currently dropped from the gate by the silence
  // timeout — it re-enters with its next message/heartbeat). Mutable
  // because the gate check removes timed-out roots; last_gate_now_
  // records the latest gate-query time, the watermark below which the
  // heap's removals cannot be trusted (queries that travel back in time
  // fall back to the exact scan).
  mutable std::vector<std::uint32_t> heap_;
  mutable std::vector<std::uint32_t> heap_pos_;
  std::size_t unheard_count_{0};
  mutable TimePoint last_gate_now_{
      TimePoint(-std::numeric_limits<double>::infinity())};

  // Cached head-batch closure state (fast path); see file header.
  // head_last_corrected_/head_last_id_ cache the (corrected, id) key of
  // the LAST head row, so the insert-time "did it land inside the head?"
  // test is one key compare instead of a positional rank computation.
  mutable bool head_valid_{false};
  mutable std::size_t head_size_{0};
  mutable TimePoint head_safe_{
      TimePoint(-std::numeric_limits<double>::infinity())};
  mutable double head_last_corrected_{0.0};
  mutable MessageId head_last_id_{};
};

}  // namespace tommy::core
