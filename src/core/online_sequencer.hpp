// Online fair sequencing (§3.5, Appendix C).
//
// Messages stream in; the sequencer maintains a buffer of unemitted
// messages ordered by corrected stamp and repeatedly tries to emit the
// head batch. A batch B is emitted only when BOTH hold:
//
//  (Q1, safe emission) now >= T_b where T_b = max_{m in B} T^F_m and
//    P(T*_m < T^F_m) > p_safe. New arrivals that are not confidently
//    after every member of B merge into B (extending T_b), reproducing
//    Appendix C's behaviour where one high-uncertainty message pulls
//    temporally-distinct messages into its batch.
//
//  (Q2, completeness) for every expected client c the sequencer has seen a
//    message or heartbeat (over the per-client FIFO channel) whose stamp
//    implies — with probability >= p_safe — that any future message from c
//    must have true time past T_b: hw_c + Q_{θc}(1 − p_safe) >= T_b.
//    A client silent longer than `client_silence_timeout` is dropped from
//    this gate (the liveness trade-off §3.5 names: "a failed client may
//    halt the sequencer").
//
// Arrivals that confidently belonged at or before an already-emitted rank
// are counted as fairness violations (they are assigned to the next batch;
// the p_safe knob controls how rare this is).
//
// ── Hot-path design (critical gaps + incremental closure) ───────────────
//
// The default (fast) implementation never evaluates a probability on the
// hot path. Every buffered entry caches its corrected stamp, safe-emission
// time and dense client index once at ingest; every "confidently after"
// question is then a subtraction and a comparison against the engine's
// precomputed per-client-pair critical gap (see preceding.hpp for the
// derivation). The closure computation for the head batch maintains this
// invariant between polls:
//
//   head_valid_ ⟹ head_size_ = |head batch under BatchRule::kClosure| and
//   head_safe_  = max safe-emission time over that batch, for the buffer
//   as it currently stands.
//
// The cached pair survives across inserts because the closure is monotone
// under insertion beyond the head: new entries can never *unblock* an
// earlier cut (uncertain pairs only accumulate), so an insert invalidates
// the pair only when it (a) lands inside the current head batch, or
// (b) forms an uncertain pair with some head row — detected exactly, by
// scanning head rows nearest-first and stopping once the corrected-stamp
// gap exceeds the engine's global maximum critical gap. Recomputation
// itself is windowed the same way (a row's uncertain partners all lie
// within its max critical gap), so a poll costs O(batch + uncertainty
// window) instead of the naive O(n²) sweep, and the deque buffer makes
// head emission O(batch) instead of an O(n) front erase.
//
// `OnlineConfig::reference_mode` retains the naive implementation —
// from-scratch O(n²) closure per poll, per-query probability evaluation —
// as the semantic reference; the randomized equivalence tests assert the
// two modes emit bit-identical batch sequences.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/batching.hpp"
#include "core/preceding.hpp"
#include "core/sequencer.hpp"

namespace tommy::core {

struct OnlineConfig {
  /// Batch-boundary confidence (§3.4).
  double threshold{0.75};
  /// Safe-emission confidence (§3.5; e.g. 0.999).
  double p_safe{0.999};
  /// Drop a client from the completeness gate after this much sequencer
  /// time without any message/heartbeat. Infinite = never (strict
  /// fairness, no liveness under client failure). With a finite timeout a
  /// client that has NEVER spoken is excluded immediately — startup does
  /// not block on clients that may not exist; it re-enters the gate with
  /// its first message/heartbeat.
  Duration client_silence_timeout{Duration::infinity()};
  /// Use the retained naive implementation (per-query probabilities,
  /// from-scratch closure each poll). Slow; exists as the semantic
  /// reference the equivalence tests compare the fast path against.
  bool reference_mode{false};
  PrecedingConfig preceding{};
};

/// One emitted batch plus emission metadata.
struct EmissionRecord {
  Batch batch;
  TimePoint emitted_at;  // sequencer clock when emitted
  TimePoint safe_time;   // the T_b that gated it
};

class OnlineSequencer {
 public:
  /// `expected_clients` is the fixed, known client set (§3.5's assumption
  /// for answering Q2). The registry must cover all of them.
  OnlineSequencer(const ClientRegistry& registry,
                  std::vector<ClientId> expected_clients,
                  OnlineConfig config = {});

  /// Ingests a message; `m.arrival` must be the current sequencer time
  /// (non-decreasing across calls — FIFO channels deliver in order).
  void on_message(const Message& m);

  /// Ingests a heartbeat carrying client `c`'s local stamp.
  void on_heartbeat(ClientId c, TimePoint local_stamp, TimePoint now);

  /// Attempts emissions at sequencer time `now`; returns every batch that
  /// became safe, in rank order.
  [[nodiscard]] std::vector<EmissionRecord> poll(TimePoint now);

  /// Shutdown path: emits everything still buffered as properly-batched
  /// ranks, ignoring the safe-emission and completeness gates. Use when
  /// the stream has provably ended (e.g. simulation teardown, market
  /// close); fairness w.r.t. still-in-flight messages is obviously not
  /// guaranteed.
  [[nodiscard]] std::vector<EmissionRecord> flush(TimePoint now);

  /// T_b of the current head batch (infinite future if buffer empty) —
  /// callers can schedule the next poll at this instant.
  [[nodiscard]] TimePoint next_safe_time() const;

  [[nodiscard]] std::size_t pending_count() const { return buffer_.size(); }
  [[nodiscard]] Rank next_rank() const { return next_rank_; }

  /// Messages that arrived after a batch they confidently belonged in (or
  /// before) had already been emitted.
  [[nodiscard]] std::size_t fairness_violations() const {
    return fairness_violations_;
  }

  /// Clients currently excluded from the completeness gate by the
  /// silence timeout.
  [[nodiscard]] std::vector<ClientId> timed_out_clients(TimePoint now) const;

 private:
  /// A buffered (or recently emitted) message with its per-ingest cached
  /// constants: corrected stamp (the sort key), safe-emission time, and
  /// the dense client index keying the engine's flat tables.
  struct Buffered {
    Message msg;
    double corrected{0.0};
    TimePoint safe_time{TimePoint::epoch()};
    std::uint32_t cindex{0};
  };

  struct ClientState {
    ClientId id;
    std::uint32_t cindex{0};
    TimePoint high_water{TimePoint(-std::numeric_limits<double>::infinity())};
    TimePoint last_heard{TimePoint(-std::numeric_limits<double>::infinity())};
    bool heard{false};
  };

  void note_alive(ClientId c, TimePoint local_stamp, TimePoint now);
  void refresh_entry(Buffered& entry) const;
  [[nodiscard]] Buffered make_entry(const Message& m) const;
  /// Re-primes the engine and refreshes cached entry constants after a
  /// registry re-announce (fast mode; takes effect at the next ingest or
  /// poll). A re-announce can reorder corrected stamps relative to the
  /// stored buffer order (which is preserved, exactly as in the naive
  /// path, which never re-sorts either); `buffer_sorted_` records
  /// whether the sortedness invariant still holds — the windowed early
  /// exits in the scans below are only valid while it does, so they fall
  /// back to full (still constant-per-pair) scans until the buffer
  /// drains or a later refresh restores order.
  void maybe_reprime();

  // Fast path.
  void insert_fast(Buffered entry);
  void recompute_head() const;
  [[nodiscard]] bool completeness_satisfied(TimePoint t_b, TimePoint now) const;

  // Retained naive reference path.
  [[nodiscard]] bool confidently_after(const Message& later,
                                       const Message& earlier) const;
  /// Size of the head batch under the closure rule (BatchRule::kClosure).
  [[nodiscard]] std::size_t head_batch_size_naive() const;
  [[nodiscard]] TimePoint safe_time_for_naive(std::size_t batch_size) const;
  [[nodiscard]] bool completeness_satisfied_naive(TimePoint t_b,
                                                  TimePoint now) const;

  [[nodiscard]] std::vector<EmissionRecord> drain(TimePoint now,
                                                  bool ignore_gates);
  void emit_head(std::size_t size, TimePoint t_b, TimePoint now,
                 std::vector<EmissionRecord>& out);

  const ClientRegistry& registry_;
  OnlineConfig config_;
  PrecedingEngine engine_;
  std::vector<ClientId> expected_clients_;
  std::vector<ClientState> clients_;  // parallel to expected_clients_
  std::unordered_map<ClientId, std::uint32_t> expected_index_;

  std::deque<Buffered> buffer_;  // sorted by (corrected stamp, id)
  Rank next_rank_{0};
  std::vector<Buffered> last_emitted_;  // for violation detection
  std::size_t fairness_violations_{0};

  // Cached head-batch closure state (fast path); see file header.
  mutable bool head_valid_{false};
  mutable std::size_t head_size_{0};
  mutable TimePoint head_safe_{
      TimePoint(-std::numeric_limits<double>::infinity())};
  // True while buffer_ is sorted by (corrected, id); see maybe_reprime().
  bool buffer_sorted_{true};
};

}  // namespace tommy::core
