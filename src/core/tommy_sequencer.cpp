#include "core/tommy_sequencer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/digraph.hpp"
#include "graph/feedback_arc.hpp"
#include "graph/ordering.hpp"
#include "graph/tournament.hpp"

namespace tommy::core {

namespace {

/// prime() also materializes safe-emission/frontier offsets keyed on a
/// p_safe; offline batching never reads them, so any valid value does.
constexpr double kOfflinePrimePSafe = 0.999;

}  // namespace

TommySequencer::TommySequencer(const ClientRegistry& registry,
                               TommyConfig config)
    : registry_(registry),
      config_(config),
      engine_(registry, config.preceding),
      stochastic_rng_(config.stochastic_seed) {
  TOMMY_EXPECTS(config.threshold > 0.5 && config.threshold < 1.0);
}

PairConfidenceFn TommySequencer::boundary_predicate() const {
  if (config_.reference_thresholds) {
    return [this](const Message& a, const Message& b) {
      return engine_.preceding_probability(a, b) > config_.threshold;
    };
  }
  // Primed path: the threshold decision is one subtraction against the
  // per-pair critical gap, in corrected-stamp space (see preceding.hpp).
  return [this](const Message& a, const Message& b) {
    const std::uint32_t ci = registry_.index_of(a.client);
    const std::uint32_t cj = registry_.index_of(b.client);
    return engine_.fast_confidently_preceding(
        ci, engine_.fast_corrected(ci, a.stamp), cj,
        engine_.fast_corrected(cj, b.stamp));
  };
}

SequencerResult TommySequencer::sequence(std::vector<Message> messages) {
  diagnostics_ = TommyDiagnostics{};
  if (messages.empty()) return {};
  if (!config_.reference_thresholds) {
    // Idempotent when already primed for this threshold and registry
    // generation; re-announces between sequence() calls re-prime here.
    engine_.prime(config_.threshold, kOfflinePrimePSafe);
  }

  const bool fast = config_.gaussian_fast_path && registry_.all_gaussian() &&
                    !config_.preceding.force_numeric;
  if (fast) return sequence_fast_gaussian(std::move(messages));
  return sequence_tournament(std::move(messages));
}

SequencerResult TommySequencer::sequence_fast_gaussian(
    std::vector<Message> messages) {
  diagnostics_.used_gaussian_fast_path = true;
  diagnostics_.tournament_transitive = true;

  // Appendix A: for Gaussians, i precedes j with p > 1/2 iff
  // T_i + μ_i < T_j + μ_j, so the corrected-mean sort IS the unique
  // topological order of the (transitive) tournament.
  std::sort(messages.begin(), messages.end(),
            [this](const Message& a, const Message& b) {
              const TimePoint ca = engine_.corrected_stamp(a);
              const TimePoint cb = engine_.corrected_stamp(b);
              if (ca != cb) return ca < cb;
              return a.id < b.id;  // deterministic tie-break
            });

  SequencerResult result;
  result.batches = batch_by_confidence(std::move(messages),
                                       boundary_predicate(),
                                       config_.batch_rule);
  return result;
}

SequencerResult TommySequencer::sequence_tournament(
    std::vector<Message> messages) {
  const std::size_t n = messages.size();
  TOMMY_EXPECTS(n <= config_.max_tournament_nodes);

  const graph::Tournament tournament = graph::Tournament::from_pairwise(
      n, [this, &messages](std::size_t i, std::size_t j) {
        return engine_.preceding_probability(messages[i], messages[j]);
      });
  if (config_.analyze_transitivity) {
    diagnostics_.transitivity = graph::analyze_transitivity(tournament);
  }

  const PairConfidenceFn confident = boundary_predicate();

  SequencerResult result;
  if (tournament.is_transitive()) {
    diagnostics_.tournament_transitive = true;
    const std::vector<std::size_t> order = graph::hamiltonian_path(tournament);
    std::vector<Message> ordered;
    ordered.reserve(n);
    for (std::size_t idx : order) ordered.push_back(messages[idx]);
    result.batches = batch_by_confidence(std::move(ordered), confident,
                                         config_.batch_rule);
    return result;
  }

  diagnostics_.tournament_transitive = false;

  if (config_.cycle_policy == CyclePolicy::kCondense) {
    // Members of a cycle cannot be ordered with confidence: group each SCC
    // and order the condensation DAG topologically.
    graph::Digraph digraph(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && tournament.edge(i, j)) {
          digraph.add_edge(i, j, tournament.edge_weight(i, j));
        }
      }
    }
    const graph::SccResult scc = graph::strongly_connected_components(digraph);
    diagnostics_.scc_count = scc.components.size();
    const graph::Digraph dag = graph::condense(digraph, scc);
    const auto topo = dag.topological_sort();
    TOMMY_ASSERT(topo.has_value());  // condensation is acyclic by construction

    std::vector<std::vector<Message>> groups;
    groups.reserve(scc.components.size());
    for (std::size_t component : *topo) {
      std::vector<Message> group;
      group.reserve(scc.components[component].size());
      for (std::size_t idx : scc.components[component]) {
        group.push_back(messages[idx]);
      }
      groups.push_back(std::move(group));
    }
    result.batches = batch_groups_by_confidence(std::move(groups), confident);
    return result;
  }

  // Feedback-arc-set policies: obtain a full linear order, count what was
  // sacrificed, then batch as usual.
  graph::FasOrdering fas;
  switch (config_.cycle_policy) {
    case CyclePolicy::kGreedyFas:
      fas = graph::greedy_fas(tournament);
      break;
    case CyclePolicy::kStochasticFas:
      fas = graph::stochastic_fas(tournament, stochastic_rng_);
      break;
    case CyclePolicy::kExactFas:
      fas = graph::exact_min_fas(tournament);
      break;
    case CyclePolicy::kCondense:
      TOMMY_ASSERT(false);  // handled above
  }
  diagnostics_.fas_removed_edges = fas.removed_count;
  diagnostics_.fas_removed_weight = fas.removed_weight;

  std::vector<Message> ordered;
  ordered.reserve(n);
  for (std::size_t idx : fas.order) ordered.push_back(messages[idx]);
  result.batches = batch_by_confidence(std::move(ordered), confident,
                                       config_.batch_rule);
  return result;
}

}  // namespace tommy::core
