// The Tommy fair sequencer (§3.4, offline): builds likely-happened-before
// relations from the preceding-probability engine, extracts a linear order,
// and cuts it into confidence batches.
//
// Ordering strategy:
//  * Gaussian fast path — when every registered distribution is Gaussian,
//    Appendix A reduces pairwise comparison to corrected means, so sorting
//    by T + μ yields the transitive tournament's unique topological order
//    without materializing O(n²) probabilities.
//  * Tournament path — otherwise (or when forced), the full tournament is
//    built. If it is transitive, its unique Hamiltonian path is the order.
//    If cyclic, the configured CyclePolicy applies:
//      kCondense      — SCC condensation; every cycle's members share a
//                       batch (maximally conservative, the default),
//      kGreedyFas     — Eades–Lin–Smyth weighted feedback-arc heuristic,
//      kStochasticFas — randomized order sampled from the probabilities
//                       (stochastically fair across rounds, §3.4/§5),
//      kExactFas      — exact minimum FAS (n <= 20 only; test oracle).
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "core/batching.hpp"
#include "core/preceding.hpp"
#include "core/sequencer.hpp"
#include "graph/transitivity.hpp"

namespace tommy::core {

enum class CyclePolicy { kCondense, kGreedyFas, kStochasticFas, kExactFas };

struct TommyConfig {
  /// Batch-boundary confidence (§3.4; the paper evaluates with 0.75).
  double threshold{0.75};
  /// Boundary rule along the linear order (see BatchRule).
  BatchRule batch_rule{BatchRule::kAdjacent};
  CyclePolicy cycle_policy{CyclePolicy::kCondense};
  /// Allow the corrected-mean sort when all distributions are Gaussian.
  bool gaussian_fast_path{true};
  /// Upper bound on messages for the O(n²) tournament path.
  std::size_t max_tournament_nodes{4096};
  /// Seed for kStochasticFas order sampling.
  std::uint64_t stochastic_seed{0x70AA5EEDULL};
  /// Fill TommyDiagnostics::transitivity on the tournament path. O(n³) —
  /// diagnostics only, off by default.
  bool analyze_transitivity{false};
  /// Decide batch boundaries from raw pairwise probabilities instead of
  /// the engine's primed critical-gap tables. The default (false) answers
  /// every "p(a, b) > threshold" with one subtraction against the primed
  /// per-pair gap — no Φ/convolution evaluation per message pair; raw
  /// probabilities are only materialized where a probability is actually
  /// consumed (tournament edge weights, RAS diagnostics,
  /// min_cross_batch_probability). True retains the original per-pair
  /// evaluation as the semantic reference; the equivalence test pins the
  /// two bit-identical.
  bool reference_thresholds{false};
  PrecedingConfig preceding{};
};

/// Post-run introspection for tests and benches.
struct TommyDiagnostics {
  bool used_gaussian_fast_path{false};
  bool tournament_transitive{true};
  std::size_t scc_count{0};        // condensation components (kCondense)
  std::size_t fas_removed_edges{0};  // backward edges dropped (FAS policies)
  double fas_removed_weight{0.0};
  /// Only populated when TommyConfig::analyze_transitivity is set and the
  /// tournament path ran (§5's "characterization of —p→" diagnostics).
  graph::TransitivityReport transitivity{};
};

class TommySequencer final : public Sequencer {
 public:
  /// The registry must contain every client appearing in messages and must
  /// outlive the sequencer.
  TommySequencer(const ClientRegistry& registry, TommyConfig config = {});

  [[nodiscard]] SequencerResult sequence(
      std::vector<Message> messages) override;
  [[nodiscard]] std::string name() const override { return "tommy"; }

  [[nodiscard]] const TommyDiagnostics& last_diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] const PrecedingEngine& engine() const { return engine_; }
  [[nodiscard]] const TommyConfig& config() const { return config_; }

 private:
  [[nodiscard]] SequencerResult sequence_fast_gaussian(
      std::vector<Message> messages);
  [[nodiscard]] SequencerResult sequence_tournament(
      std::vector<Message> messages);
  /// The batch-boundary predicate `p(a, b) > threshold` — critical-gap
  /// compare by default, raw probability under reference_thresholds.
  [[nodiscard]] PairConfidenceFn boundary_predicate() const;

  ClientRegistry const& registry_;
  TommyConfig config_;
  PrecedingEngine engine_;
  Rng stochastic_rng_;
  TommyDiagnostics diagnostics_{};
};

}  // namespace tommy::core
