#include "core/wfo_online.hpp"

#include "common/check.hpp"

namespace tommy::core {

WfoOnlineSequencer::WfoOnlineSequencer(std::vector<ClientId> expected_clients)
    : expected_clients_(std::move(expected_clients)) {
  TOMMY_EXPECTS(!expected_clients_.empty());
  for (ClientId c : expected_clients_) clients_[c] = ClientState{};
}

void WfoOnlineSequencer::on_message(const Message& m) {
  const auto it = clients_.find(m.client);
  TOMMY_EXPECTS(it != clients_.end());
  ClientState& state = it->second;
  if (m.stamp < state.high_water) ++monotonicity_violations_;
  state.high_water = std::max(state.high_water, m.stamp);
  state.queue.push_back(m);
}

void WfoOnlineSequencer::on_heartbeat(ClientId client, TimePoint local_stamp) {
  const auto it = clients_.find(client);
  TOMMY_EXPECTS(it != clients_.end());
  it->second.high_water = std::max(it->second.high_water, local_stamp);
}

bool WfoOnlineSequencer::releasable(TimePoint stamp) const {
  for (ClientId c : expected_clients_) {
    const ClientState& state = clients_.at(c);
    if (!state.queue.empty()) continue;     // has a candidate of its own
    if (state.high_water > stamp) continue; // clock provably past `stamp`
    return false;
  }
  return true;
}

std::vector<Batch> WfoOnlineSequencer::poll() {
  std::vector<Batch> released;
  while (true) {
    // Smallest queued head stamp across clients.
    ClientState* best = nullptr;
    for (ClientId c : expected_clients_) {
      ClientState& state = clients_.at(c);
      if (state.queue.empty()) continue;
      if (best == nullptr ||
          state.queue.front().stamp < best->queue.front().stamp) {
        best = &state;
      }
    }
    if (best == nullptr) break;
    if (!releasable(best->queue.front().stamp)) break;

    Batch batch;
    batch.rank = next_rank_++;
    batch.messages.push_back(best->queue.front());
    best->queue.pop_front();
    released.push_back(std::move(batch));
  }
  return released;
}

std::size_t WfoOnlineSequencer::pending_count() const {
  std::size_t total = 0;
  for (const auto& [client, state] : clients_) total += state.queue.size();
  return total;
}

}  // namespace tommy::core
