// FairOrderingService: the multi-shard front-end over the online
// sequencer — the service boundary scalable fair-ordering deployments
// need (key-range sharding over a shared primed engine, per-connection
// sessions, sink-style emission, and an opt-in per-shard worker-thread
// execution engine).
//
// Layering (see docs/architecture.md):
//
//   Session ──► OnlineSequencer shard ──► FairOrderingService
//
//  * A `KeyRouter` statically partitions the expected client set across N
//    shards (default: contiguous client-id ranges). Routing happens once
//    per connection at open_session; the per-message path never consults
//    the router.
//  * Every shard is a full OnlineSequencer over its clients only: its
//    completeness gate waits for its own clients, its ranks are dense
//    within the shard, and its fairness guarantees hold shard-locally.
//    Cross-shard ordering is not arbitrated by default — that is the
//    price of horizontal scale, and the router exists precisely so that
//    keys whose relative order matters can be routed to the same shard.
//    `DrainPolicy::kGlobalMerge` offers a single merged stream for
//    consumers that need one, gated on min(next_safe_time) across shards.
//  * All shards share ONE PrecedingEngine, primed once: the flat
//    critical-gap/offset tables and Δθ density cache are read-mostly
//    derived state of the registry, identical for every shard, so
//    sharing them makes shard count a memory no-op for the engine.
//  * Emission is sink-style: poll(now, sink) hands each emitted batch to
//    the sink exactly once (rvalue, no intermediate vectors), tagged with
//    the emitting shard's index.
//
// ── Threaded mode (`ServiceConfig::worker_threads`) ─────────────────────
//
// With worker threads enabled each populated shard owns a dedicated
// worker. Ingest becomes a wait-free handoff: every session owns a
// bounded SPSC ring (producer: the session's caller thread; consumer: the
// shard worker), submit/heartbeat enqueue a small op and return, and the
// worker drains its rings — applying the ordered-buffer insert and the
// incremental closure off the caller's critical path — so N shards ingest
// on N cores instead of one. poll/flush become synchronous commands: the
// worker finishes draining everything enqueued before the call, runs the
// emission attempt at the caller's `now`, and parks the records in a
// per-shard emission queue the caller then streams to the sink. Because
// per-shard emission state depends only on the SET of messages ingested
// before each poll (never on their interleaving), a threaded service's
// per-shard emission sequences are bit-identical to the sequential
// service's — the randomized equivalence tests assert exactly that.
//
// Threaded-mode contract (checked or documented):
//  * sessions are the only ingest surface (the routed legacy
//    submit/heartbeat entry points are a precondition failure);
//  * one thread per session handle; different sessions may live on
//    different threads freely (that is the point);
//  * poll/flush/next_safe_time/pending_count/fairness_violations are
//    serialized internally (any thread may call them);
//  * engine immutability is epoch-scoped: within one epoch the shared
//    engine is primed WITH full critical-gap prefill and never mutates
//    (workers read it lock-free); a registry re-announce starts a NEW
//    epoch — a fresh engine is primed off-thread (request_reconfig) and
//    atomically installed at a per-shard quiesce point
//    (try_install_reconfig), in-flight sessions revalidating by
//    generation instead of erroring (see "Live reconfiguration" below);
//  * reference_mode is incompatible with worker_threads (the naive path
//    mutates engine caches per query).
//
// A 1-shard sequential service is bit-identical to a bare OnlineSequencer
// (the randomized equivalence tests assert this), so the facade costs
// nothing when sharding is not wanted.
//
// ── Live reconfiguration (RCU-style epoch swap) ─────────────────────────
//
// The service can absorb registry churn — re-announced summaries and
// joining clients — without a restart and without dropping traffic:
//
//   announce / expect_client ─► request_reconfig ─► [prime off-thread]
//        ─► try_install_reconfig ─► quiesce + swap ─► resume
//
//  * request_reconfig starts (or notes, if one is running) a primer
//    thread that builds a brand-new PrecedingEngine against the updated
//    registry and primes its critical-gap tables — all off the ingest
//    path; the live epoch keeps serving from the old engine meanwhile.
//    A torn prime (an announce landing mid-build) is detected via the
//    generation recorded at build start and simply re-primed.
//  * try_install_reconfig is the quiesce point: under the control lock
//    every worker applies every op enqueued before the install command
//    (a bounded pass — sustained ingest cannot defer the swap) and
//    rebinds its shard to the staged engine on its own thread
//    (Cmd::kRebind); shards populated
//    for the first time get sequencers + workers; then the new topology
//    (routes, engine, primed generation, epoch counter) is published
//    under the topology lock. Sessions opened in the old epoch stay
//    valid — they revalidate by generation on next use.
//  * reconfigure() is the blocking convenience loop (prime + install
//    until the service has caught up with the registry); tests and
//    sequential oracles use it for deterministic epoch boundaries.
//  * close_session / retirement: a departed client is removed from its
//    shard's completeness-gate frontier (FIFO-ordered through its ingest
//    lane in threaded mode) so the gate stops waiting for it; a later
//    submit from the same client revives it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/online_sequencer.hpp"

namespace tommy::core {

/// Pluggable client → shard partition. Must be pure: the service calls it
/// once per expected client at construction and caches the assignment, so
/// a router that answered differently per call would silently misroute.
class KeyRouter {
 public:
  virtual ~KeyRouter() = default;
  /// Shard index in [0, shard_count) for `client`.
  [[nodiscard]] virtual std::uint32_t route(ClientId client,
                                            std::uint32_t shard_count) const
      = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Default router: contiguous client-id ranges. The id span [lo, hi] is
/// split into shard_count equal-width ranges; ids outside the span clamp
/// to the first/last shard. Keeps id-adjacent clients (which usually means
/// topology-adjacent: same region, same rack) on the same shard.
class RangeRouter final : public KeyRouter {
 public:
  /// Routes over the inclusive id span [lo, hi].
  RangeRouter(ClientId lo, ClientId hi);

  [[nodiscard]] std::uint32_t route(ClientId client,
                                    std::uint32_t shard_count) const override;
  [[nodiscard]] std::string name() const override { return "range"; }

 private:
  std::uint64_t lo_;
  std::uint64_t span_;  // hi − lo + 1
};

/// Alternative router for sparse or adversarially clustered id spaces:
/// client id modulo shard count.
class ModuloRouter final : public KeyRouter {
 public:
  [[nodiscard]] std::uint32_t route(ClientId client,
                                    std::uint32_t shard_count) const override;
  [[nodiscard]] std::string name() const override { return "modulo"; }
};

/// How poll/flush hand multi-shard emissions to the sink.
enum class DrainPolicy {
  /// Shard-local order (the default, and the paper's model applied per
  /// shard): each shard's records arrive in its own rank order, shards
  /// visited in index order; cross-shard order is whatever the visit
  /// order produces. Zero added latency.
  kShardLocal,
  /// One merged stream: records are held back and released in ascending
  /// (safe_time T_b, shard, rank) order, a record leaving only once
  /// min(next_safe_time) over all shards has passed its T_b — i.e. once
  /// every shard's next pending batch is provably later. Consumers that
  /// need one total stream trade emission latency (up to one batch per
  /// shard is withheld) for it. flush() releases everything. Two caveats
  /// bound the "total order" claim, both inherited from the per-shard
  /// machinery rather than introduced by the merge: (a) a batch
  /// rank-blocked behind a high-uncertainty batch on its own shard can
  /// carry an earlier T_b than records already released (the same
  /// reordering the per-shard stream itself exhibits w.r.t. T_b), and
  /// (b) a shard with an empty buffer gates nothing (its next_safe_time
  /// is infinite), so a straggler landing on it later — an arrival past
  /// the p_safe margin, probability bounded by the same 1 − p_safe that
  /// bounds fairness violations — can emit behind records it should have
  /// preceded.
  kGlobalMerge,
};

/// Builder-style service configuration.
struct ServiceConfig {
  /// Per-shard sequencer configuration; `online.preceding` configures the
  /// shared engine.
  OnlineConfig online{};
  std::uint32_t shard_count{1};
  /// nullptr → RangeRouter over the expected clients' id span.
  std::shared_ptr<const KeyRouter> router{};
  /// One worker thread per populated shard; see the file header.
  /// Incompatible with `online.reference_mode`.
  bool worker_threads{false};
  DrainPolicy drain_policy{DrainPolicy::kShardLocal};
  /// Per-session SPSC ingest ring capacity (threaded mode; rounded up to
  /// a power of two). A full ring backpressures the producer (it spins
  /// with yields until the worker catches up).
  std::size_t ingest_ring_capacity{1024};

  ServiceConfig& with_online(OnlineConfig config) {
    online = config;
    return *this;
  }
  ServiceConfig& with_shards(std::uint32_t count) {
    shard_count = count;
    return *this;
  }
  ServiceConfig& with_router(std::shared_ptr<const KeyRouter> r) {
    router = std::move(r);
    return *this;
  }
  ServiceConfig& with_threshold(double threshold) {
    online.threshold = threshold;
    return *this;
  }
  ServiceConfig& with_p_safe(double p_safe) {
    online.p_safe = p_safe;
    return *this;
  }
  ServiceConfig& with_worker_threads(bool enabled = true) {
    worker_threads = enabled;
    return *this;
  }
  ServiceConfig& with_drain_policy(DrainPolicy policy) {
    drain_policy = policy;
    return *this;
  }
};

/// Why `open_session` can fail when asked politely (try_open_session):
/// a wire front-end cannot treat a peer-controlled client id as a
/// precondition the way in-process callers do.
enum class OpenError : std::uint8_t {
  kNone,
  /// The client is not in the service's expected set and no reconfig is
  /// pending that would add it (unknown peers have no shard).
  kUnknownClient,
  /// The client is queued to join at the next reconfig install
  /// (expect_client + request_reconfig) but the new epoch has not been
  /// installed yet. Retry after the install — the wire front-end maps
  /// this to a ReconfigPending response.
  kRegistryChanged,
};

[[nodiscard]] const char* to_string(OpenError error);

/// Adapts an invocable `fn(EmissionRecord&&, std::uint32_t shard)` to the
/// EmissionSink interface without allocation or type erasure.
template <typename F>
class CallbackSink final : public EmissionSink {
 public:
  explicit CallbackSink(F& fn) : fn_(fn) {}
  void on_emission(EmissionRecord&& record, std::uint32_t shard) override {
    fn_(std::move(record), shard);
  }

 private:
  F& fn_;
};

class FairOrderingService {
  // Threaded-mode internals, defined in service.cpp. Declared up front so
  // the nested Session can hold a lane pointer.
  struct IngestLane;
  struct ShardWorker;
  struct Threading;

 public:
  /// Per-connection handle bound to its client's shard at open. In
  /// sequential mode submit/heartbeat forward straight to the shard
  /// sequencer's session (no routing, no hashing per message); in
  /// threaded mode they enqueue onto the session's SPSC ring and return
  /// (the shard worker applies them). A session handle must be driven by
  /// one thread at a time (it is the ring's single producer); distinct
  /// sessions are free to live on distinct threads.
  class Session {
   public:
    Session() = default;

    void submit(TimePoint stamp, MessageId id, TimePoint now);
    /// Batched submit; arrivals must be non-decreasing within the span
    /// (per-session FIFO) but are exempt from the cross-session arrival
    /// ordering submit() asserts — batches accumulated per session
    /// interleave with other sessions' traffic by construction, and
    /// per-shard emissions are ingest-order-independent between polls
    /// (see OnlineSequencer::Session::submit_relaxed).
    void submit_batch(std::span<const Submission> items);
    void heartbeat(TimePoint local_stamp, TimePoint now);

    /// Nonblocking submit_batch for event-driven front-ends: applies (or
    /// enqueues) a PREFIX of `items` and returns its length. Sequential
    /// mode accepts everything (capacity there is the ingest lock, which
    /// the caller already arbitrates); threaded mode stops at the first
    /// op the session's full ring rejects, so the caller can hold the
    /// remainder and stop reading its socket — backpressure instead of
    /// the spinning push() performs.
    [[nodiscard]] std::size_t try_submit_batch(
        std::span<const Submission> items);

    /// Nonblocking heartbeat: false when the session's ring is full (the
    /// caller retries later; heartbeats are idempotent in effect).
    [[nodiscard]] bool try_heartbeat(TimePoint local_stamp, TimePoint now);

    [[nodiscard]] ClientId client() const { return client_; }
    [[nodiscard]] std::uint32_t shard() const { return shard_; }

   private:
    friend class FairOrderingService;

    OnlineSequencer::Session inner_;  // sequential mode
    IngestLane* lane_{nullptr};       // threaded mode (owned by the service)
    ClientId client_{};
    std::uint32_t shard_{0};
  };

  /// The registry must cover every expected client and outlive the
  /// service. Shards with no routed clients are simply absent (their
  /// index stays valid; they emit nothing). With worker_threads the
  /// workers start here and stop in the destructor.
  FairOrderingService(const ClientRegistry& registry,
                      std::vector<ClientId> expected_clients,
                      ServiceConfig config = {});
  ~FairOrderingService();

  FairOrderingService(const FairOrderingService&) = delete;
  FairOrderingService& operator=(const FairOrderingService&) = delete;

  /// Opens an ingest handle for `client`; the one place routing happens.
  /// Thread-safe in threaded mode (sessions may be opened while traffic
  /// flows). An unknown client is a precondition failure — external
  /// callers with peer-controlled ids should use try_open_session.
  [[nodiscard]] Session open_session(ClientId client);

  /// Non-aborting open_session for connection front-ends: returns nullopt
  /// (and the reason via `error`) instead of failing a precondition on
  /// unknown clients, and detects a registry that moved on after a
  /// threaded prime (OpenError::kRegistryChanged).
  [[nodiscard]] std::optional<Session> try_open_session(
      ClientId client, OpenError* error = nullptr);

  /// True iff `client` currently has a shard (expected at construction or
  /// added by a reconfig install). Thread-safe.
  [[nodiscard]] bool expects_client(ClientId client) const;

  /// Registry generation the live epoch's engine was primed at. Moves
  /// forward at each reconfig install; sessions revalidate against it.
  [[nodiscard]] std::uint64_t primed_generation() const {
    return primed_generation_.load(std::memory_order_acquire);
  }

  // ── Live reconfiguration ────────────────────────────────────────────
  // See the file-header section. All of these are thread-safe.

  /// Queues `client` (which must already be announced in the registry)
  /// to join the service at the next reconfig install. Idempotent; a
  /// no-op for clients that already have a shard.
  void expect_client(ClientId client);

  /// True iff an install is outstanding: the registry generation has
  /// moved past the live epoch's, or clients are queued to join.
  [[nodiscard]] bool reconfig_pending() const;

  /// Starts priming a new epoch off-thread if one is needed and no primer
  /// is already running. Returns the registry generation the reconfig is
  /// targeting (callers can poll primed_generation() against it).
  std::uint64_t request_reconfig();

  /// Installs the staged epoch if the primer has finished: quiesces every
  /// worker, rebinds shards to the new engine, publishes the new
  /// topology. Returns true on install; false when nothing was staged,
  /// the stage was torn (a re-prime is kicked off), or no reconfig is
  /// pending.
  bool try_install_reconfig();

  /// Blocking convenience: prime + install until the service has caught
  /// up with the registry and no joins are queued. Deterministic epoch
  /// boundary for tests and sequential oracles.
  void reconfigure();

  /// Monotone count of installed epochs (0 = the constructed epoch).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Retires the session's client from its shard's completeness gate: the
  /// gate stops waiting for the client immediately (FIFO-ordered through
  /// the session's ingest lane in threaded mode, so ops already enqueued
  /// land first). The handle must not be used afterwards; a later
  /// open_session + submit for the same client revives it.
  void close_session(Session& session);

  /// Routed legacy-style ingest (one hash for the shard lookup plus the
  /// shard's own table hash). Prefer sessions on hot paths. Sequential
  /// mode only — a precondition failure under worker_threads.
  void submit(const Message& m);
  void heartbeat(ClientId client, TimePoint local_stamp, TimePoint now);

  /// Drains every shard's safe batches into `sink` (shard-tagged; order
  /// per the configured DrainPolicy). Returns the number of batches
  /// handed to the sink by this call. In threaded mode this is a
  /// synchronous command: every op enqueued (by this thread, or
  /// happening-before this call) is applied first, the emission attempt
  /// runs at exactly `now` on each worker, and the records stream to the
  /// sink on the calling thread.
  std::size_t poll(TimePoint now, EmissionSink& sink);
  /// Callback overload: fn(EmissionRecord&&, std::uint32_t shard).
  /// Constrained so EmissionSink implementations always take the sink
  /// overload above instead of being wrapped (and failing to compile)
  /// here.
  template <typename F>
    requires(!std::is_base_of_v<EmissionSink, std::remove_reference_t<F>>)
  std::size_t poll(TimePoint now, F&& fn) {
    CallbackSink<F> sink(fn);
    return poll(now, static_cast<EmissionSink&>(sink));
  }

  /// Shutdown drain, ignoring the emission gates (see
  /// OnlineSequencer::flush). Under kGlobalMerge also releases every
  /// held-back record. Returns the number of batches emitted.
  std::size_t flush(TimePoint now, EmissionSink& sink);
  template <typename F>
    requires(!std::is_base_of_v<EmissionSink, std::remove_reference_t<F>>)
  std::size_t flush(TimePoint now, F&& fn) {
    CallbackSink<F> sink(fn);
    return flush(now, static_cast<EmissionSink&>(sink));
  }

  /// Barrier: blocks until every worker has applied every op enqueued
  /// before the call (no-op in sequential mode). After it returns, state
  /// accessors reflect everything submitted before the call; ops racing
  /// in from concurrent producers may still be in flight.
  void quiesce();

  /// Earliest next_safe_time across shards (infinite future when all
  /// buffers are empty) — the next instant a poll could emit. Threaded
  /// mode: quiesces first. Does not account for records the global merge
  /// is holding back (those are already emitted, merely withheld).
  [[nodiscard]] TimePoint next_safe_time() const;

  /// One shard's own frontier — the same value the aggregate minimizes
  /// over, without the min: what a distributed shard node lifts onto the
  /// wire as its SafeTimeAnnounce, leaving the merge tier to recompute
  /// min over its live peers. Infinite future for an absent (never
  /// populated) shard — an empty buffer gates nothing, exactly as in the
  /// in-process merge. Precondition: `shard` < shard_count(). Threaded
  /// mode: quiesces first, then reads the ack-time snapshot.
  [[nodiscard]] TimePoint next_safe_time(std::uint32_t shard) const;

  [[nodiscard]] std::size_t pending_count() const;
  [[nodiscard]] std::size_t fairness_violations() const;
  /// Messages inside batches the global merge has emitted but not yet
  /// released (always 0 under kShardLocal). Serialized like the other
  /// accessors.
  [[nodiscard]] std::size_t held_back_count() const;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shard assignment of `client` (hash lookup; cold path). Thread-safe.
  [[nodiscard]] std::uint32_t shard_of(ClientId client) const;
  /// Direct access to a shard's sequencer (diagnostics, tests).
  /// Precondition: the shard exists (some client routed to it). In
  /// threaded mode, quiesce() first and do not touch concurrently with
  /// live producers.
  [[nodiscard]] const OnlineSequencer& shard(std::uint32_t index) const;
  [[nodiscard]] OnlineSequencer& shard(std::uint32_t index);
  [[nodiscard]] bool has_shard(std::uint32_t index) const;
  [[nodiscard]] bool threaded() const { return threading_ != nullptr; }

  /// The live epoch's engine. Do not hold the reference across a reconfig
  /// install (the epoch swap retires it).
  [[nodiscard]] const PrecedingEngine& engine() const;
  [[nodiscard]] const KeyRouter& router() const { return *router_; }
  [[nodiscard]] const ClientRegistry& registry() const { return registry_; }

 private:
  /// Sequential-mode drain core (poll/flush share it).
  std::size_t drain_sequential(TimePoint now, bool flush_all,
                               EmissionSink& sink);
  /// Threaded-mode drain core: broadcast the command, await acks, stream
  /// the emission queues.
  std::size_t drain_threaded(TimePoint now, bool flush_all,
                             EmissionSink& sink);
  /// Pushes one emitted record into the kGlobalMerge holdback heap.
  void hold_back(EmissionRecord&& record, std::uint32_t shard);
  /// Releases held-back records (kGlobalMerge) whose safe_time has been
  /// passed by `min_next_safe`; everything when `release_all`.
  std::size_t release_merged(TimePoint min_next_safe, bool release_all,
                             EmissionSink& sink);

  /// Launches the off-thread primer. Requires reconfig_.mutex held and no
  /// primer currently running (reconfig_.priming false).
  void start_prime_locked();
  /// Quiesce + swap: rebinds every shard (worker-side in threaded mode),
  /// creates shards/workers for first-time-populated partitions, then
  /// publishes routes, engine, generation, and epoch.
  void install_staged(std::shared_ptr<const PrecedingEngine> staged,
                      std::vector<ClientId> joins);
  /// Steals and joins the primer thread (never call holding
  /// reconfig_.mutex while the primer may still want it).
  void join_primer();

  /// Off-thread prime state for the next epoch.
  struct Reconfig {
    mutable std::mutex mutex;
    std::thread primer;
    /// Staged engine, handed off exactly once to the installer that
    /// clears `ready`.
    std::shared_ptr<const PrecedingEngine> staged;
    /// Announced clients awaiting a shard at the next install.
    std::vector<ClientId> pending_clients;
    bool priming{false};
    std::atomic<bool> ready{false};
  };

  const ClientRegistry& registry_;
  std::shared_ptr<const KeyRouter> router_;
  OnlineConfig online_config_{};
  bool prefill_engines_{false};  // == threaded(); primers match it
  /// Guards the published topology: shard_by_client_, shards_ slot
  /// pointers, engine_. Readers (expects_client, shard_of, open paths)
  /// take it shared; only install_staged takes it unique.
  mutable std::shared_mutex topology_mutex_;
  std::shared_ptr<const PrecedingEngine> engine_;
  std::vector<std::unique_ptr<OnlineSequencer>> shards_;
  std::unordered_map<ClientId, std::uint32_t> shard_by_client_;
  DrainPolicy drain_policy_{DrainPolicy::kShardLocal};
  std::size_t ingest_ring_capacity_{1024};
  std::atomic<std::uint64_t> primed_generation_{0};
  std::atomic<std::uint64_t> epoch_{0};
  Reconfig reconfig_;
  /// kGlobalMerge holdback: emitted records not yet released, with their
  /// shard tags, as a binary min-heap on (safe_time, shard, rank) — a
  /// release round pops the released prefix in O(released · log H)
  /// instead of re-sorting the whole holdback. (shard, rank) is unique,
  /// so pop order equals the fully-sorted order.
  std::vector<std::pair<EmissionRecord, std::uint32_t>> holdback_;
  /// Threaded-mode state (workers, rings, mailboxes); null in sequential
  /// mode.
  std::unique_ptr<Threading> threading_;
};

}  // namespace tommy::core
