// FairOrderingService: the multi-shard front-end over the online
// sequencer — the service boundary scalable fair-ordering deployments
// need (key-range sharding over a shared primed engine, per-connection
// sessions, sink-style emission).
//
// Layering (see docs/architecture.md):
//
//   Session ──► OnlineSequencer shard ──► FairOrderingService
//
//  * A `KeyRouter` statically partitions the expected client set across N
//    shards (default: contiguous client-id ranges). Routing happens once
//    per connection at open_session; the per-message path never consults
//    the router.
//  * Every shard is a full OnlineSequencer over its clients only: its
//    completeness gate waits for its own clients, its ranks are dense
//    within the shard, and its fairness guarantees hold shard-locally.
//    Cross-shard ordering is intentionally not arbitrated — that is the
//    price of horizontal scale, and the router exists precisely so that
//    keys whose relative order matters can be routed to the same shard.
//  * All shards share ONE PrecedingEngine, primed once: the flat
//    critical-gap/offset tables and Δθ density cache are read-mostly
//    derived state of the registry, identical for every shard, so
//    sharing them makes shard count a memory no-op for the engine.
//  * Emission is sink-style: poll(now, sink) walks the shards and hands
//    each emitted batch to the sink exactly once (rvalue, no intermediate
//    vectors), tagged with the emitting shard's index. A callback
//    overload adapts any `fn(EmissionRecord&&, std::uint32_t)` invocable.
//
// A 1-shard service is bit-identical to a bare OnlineSequencer (the
// randomized equivalence tests assert this), so the facade costs nothing
// when sharding is not wanted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/online_sequencer.hpp"

namespace tommy::core {

/// Pluggable client → shard partition. Must be pure: the service calls it
/// once per expected client at construction and caches the assignment, so
/// a router that answered differently per call would silently misroute.
class KeyRouter {
 public:
  virtual ~KeyRouter() = default;
  /// Shard index in [0, shard_count) for `client`.
  [[nodiscard]] virtual std::uint32_t route(ClientId client,
                                            std::uint32_t shard_count) const
      = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Default router: contiguous client-id ranges. The id span [lo, hi] is
/// split into shard_count equal-width ranges; ids outside the span clamp
/// to the first/last shard. Keeps id-adjacent clients (which usually means
/// topology-adjacent: same region, same rack) on the same shard.
class RangeRouter final : public KeyRouter {
 public:
  /// Routes over the inclusive id span [lo, hi].
  RangeRouter(ClientId lo, ClientId hi);

  [[nodiscard]] std::uint32_t route(ClientId client,
                                    std::uint32_t shard_count) const override;
  [[nodiscard]] std::string name() const override { return "range"; }

 private:
  std::uint64_t lo_;
  std::uint64_t span_;  // hi − lo + 1
};

/// Alternative router for sparse or adversarially clustered id spaces:
/// client id modulo shard count.
class ModuloRouter final : public KeyRouter {
 public:
  [[nodiscard]] std::uint32_t route(ClientId client,
                                    std::uint32_t shard_count) const override;
  [[nodiscard]] std::string name() const override { return "modulo"; }
};

/// Builder-style service configuration.
struct ServiceConfig {
  /// Per-shard sequencer configuration; `online.preceding` configures the
  /// shared engine.
  OnlineConfig online{};
  std::uint32_t shard_count{1};
  /// nullptr → RangeRouter over the expected clients' id span.
  std::shared_ptr<const KeyRouter> router{};

  ServiceConfig& with_online(OnlineConfig config) {
    online = config;
    return *this;
  }
  ServiceConfig& with_shards(std::uint32_t count) {
    shard_count = count;
    return *this;
  }
  ServiceConfig& with_router(std::shared_ptr<const KeyRouter> r) {
    router = std::move(r);
    return *this;
  }
  ServiceConfig& with_threshold(double threshold) {
    online.threshold = threshold;
    return *this;
  }
  ServiceConfig& with_p_safe(double p_safe) {
    online.p_safe = p_safe;
    return *this;
  }
};

/// Adapts an invocable `fn(EmissionRecord&&, std::uint32_t shard)` to the
/// EmissionSink interface without allocation or type erasure.
template <typename F>
class CallbackSink final : public EmissionSink {
 public:
  explicit CallbackSink(F& fn) : fn_(fn) {}
  void on_emission(EmissionRecord&& record, std::uint32_t shard) override {
    fn_(std::move(record), shard);
  }

 private:
  F& fn_;
};

class FairOrderingService {
 public:
  /// Per-connection handle bound to its client's shard at open; submit and
  /// heartbeat forward straight to the shard sequencer's session (no
  /// routing, no hashing per message).
  class Session {
   public:
    Session() = default;

    void submit(TimePoint stamp, MessageId id, TimePoint now) {
      inner_.submit(stamp, id, now);
    }
    void heartbeat(TimePoint local_stamp, TimePoint now) {
      inner_.heartbeat(local_stamp, now);
    }
    [[nodiscard]] ClientId client() const { return inner_.client(); }
    [[nodiscard]] std::uint32_t shard() const { return shard_; }

   private:
    friend class FairOrderingService;
    OnlineSequencer::Session inner_;
    std::uint32_t shard_{0};
  };

  /// The registry must cover every expected client and outlive the
  /// service. Shards with no routed clients are simply absent (their
  /// index stays valid; they emit nothing).
  FairOrderingService(const ClientRegistry& registry,
                      std::vector<ClientId> expected_clients,
                      ServiceConfig config = {});

  FairOrderingService(const FairOrderingService&) = delete;
  FairOrderingService& operator=(const FairOrderingService&) = delete;

  /// Opens an ingest handle for `client`; the one place routing happens.
  [[nodiscard]] Session open_session(ClientId client);

  /// Routed legacy-style ingest (one hash for the shard lookup plus the
  /// shard's own table hash). Prefer sessions on hot paths.
  void submit(const Message& m);
  void heartbeat(ClientId client, TimePoint local_stamp, TimePoint now);

  /// Drains every shard's safe batches into `sink` (shard-tagged, rank
  /// order within each shard; shards are visited in index order). Returns
  /// the number of batches emitted.
  std::size_t poll(TimePoint now, EmissionSink& sink);
  /// Callback overload: fn(EmissionRecord&&, std::uint32_t shard).
  /// Constrained so EmissionSink implementations always take the sink
  /// overload above instead of being wrapped (and failing to compile)
  /// here.
  template <typename F>
    requires(!std::is_base_of_v<EmissionSink, std::remove_reference_t<F>>)
  std::size_t poll(TimePoint now, F&& fn) {
    CallbackSink<F> sink(fn);
    return poll(now, static_cast<EmissionSink&>(sink));
  }

  /// Shutdown drain, ignoring the emission gates (see
  /// OnlineSequencer::flush). Returns the number of batches emitted.
  std::size_t flush(TimePoint now, EmissionSink& sink);
  template <typename F>
    requires(!std::is_base_of_v<EmissionSink, std::remove_reference_t<F>>)
  std::size_t flush(TimePoint now, F&& fn) {
    CallbackSink<F> sink(fn);
    return flush(now, static_cast<EmissionSink&>(sink));
  }

  /// Earliest next_safe_time across shards (infinite future when all
  /// buffers are empty) — the next instant a poll could emit.
  [[nodiscard]] TimePoint next_safe_time() const;

  [[nodiscard]] std::size_t pending_count() const;
  [[nodiscard]] std::size_t fairness_violations() const;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shard assignment of `client` (hash lookup; cold path).
  [[nodiscard]] std::uint32_t shard_of(ClientId client) const;
  /// Direct access to a shard's sequencer (diagnostics, tests).
  /// Precondition: the shard exists (some client routed to it).
  [[nodiscard]] const OnlineSequencer& shard(std::uint32_t index) const;
  [[nodiscard]] OnlineSequencer& shard(std::uint32_t index);
  [[nodiscard]] bool has_shard(std::uint32_t index) const {
    return index < shards_.size() && shards_[index] != nullptr;
  }

  [[nodiscard]] const PrecedingEngine& engine() const { return *engine_; }
  [[nodiscard]] const KeyRouter& router() const { return *router_; }

 private:
  std::shared_ptr<const KeyRouter> router_;
  std::shared_ptr<const PrecedingEngine> engine_;
  std::vector<std::unique_ptr<OnlineSequencer>> shards_;
  std::unordered_map<ClientId, std::uint32_t> shard_by_client_;
};

}  // namespace tommy::core
