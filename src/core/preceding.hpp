// The preceding-probability engine: p = P(T*_i < T*_j | T_i, T_j), the
// weight of the likely-happened-before relation i —p→ j (§3.2).
//
// Two evaluation paths:
//  * Gaussian closed form (§3.2): when both clients' offsets are Gaussian,
//      p = Φ((T_j + μ_j − T_i − μ_i) / sqrt(σ_i² + σ_j²)).
//    (The paper's inline formula carries a sign typo on the means; see
//    DESIGN.md "Known paper errata". This form matches the paper's own
//    model T* = T + θ and its Appendix A.)
//  * Numeric path (§3.3): build the density of Δθ = θ_j − θ_i by FFT
//    convolution of f_{θj} with the reflection of f_{θi}, then
//      p = P(Δθ > T_i − T_j) = 1 − F_Δθ(T_i − T_j).
//    The per-ordered-client-pair Δθ CDF is cached, so the convolution cost
//    is paid once per pair, not once per message pair.
//
// ── Critical-gap reduction (the constant-time fast path) ────────────────
//
// Online sequencing never needs the probability itself — only the
// predicate `p(a, b) > threshold`. Both evaluation paths reduce that
// predicate to one subtraction and one comparison against a per-client-
// PAIR constant, the *critical gap* g*_{ij}, in corrected-stamp space.
// Writing c_a = T_a + μ_i for the corrected stamp of a message from
// client i (and c_b likewise for client j):
//
//  * Gaussian:  p = Φ((c_b − c_a) / s),  s = √(σ_i² + σ_j²), so with
//    z = Φ⁻¹(threshold):
//        p > threshold  ⟺  c_b − c_a > z·s  =: g*_{ij}.
//  * Numeric:   p = tail_Δθ(T_a − T_b) with Δθ = θ_j − θ_i. With
//    q = tail_quantile_Δθ(threshold) (the x where the interpolated tail
//    CDF equals the threshold) and T_a − T_b = (c_a − c_b) + (μ_j − μ_i):
//        p > threshold  ⟺  T_a − T_b < q
//                       ⟺  c_b − c_a > (μ_j − μ_i) − q  =: g*_{ij}.
//
// prime(threshold, p_safe) materializes, keyed by the registry's dense
// client indices into flat std::vectors (no hashing, no virtual dispatch
// on the hot path):
//   * per client: μ_c (corrected-stamp offset), Q_c(p_safe) (safe-emission
//     offset, §3.5), and Q_c(1 − p_safe) (completeness-frontier offset);
//   * per pair:   g*_{ij} — Gaussian pairs eagerly (closed form), numeric
//     pairs lazily on first query (one convolution + one quantile, then a
//     cached double);
//   * per row i:  an upper bound Ḡ_i ≥ max_j g*_{ij}, exact for Gaussian
//     pairs; for numeric pairs the Δθ grid's support gives a provable
//     bound with no convolution: the grid for θ_j − θ_i lives on
//     [lo_j − hi_i − dx, …] (effective supports, spacing dx), its
//     quantile can never fall below that edge, hence
//     g*_{ij} = (μ_j − μ_i) − q ≤ (μ_j − lo_j) + (hi_i − μ_i) + dx.
//     So lazy numeric fill never blocks the windowed closure scans that
//     rely on Ḡ_i.
//
// After priming, `confidently_preceding` is a subtraction and a compare;
// the sequencer's corrected stamps, safe-emission times and completeness
// frontiers are one addition each. The slow per-query API below remains
// the semantic reference (the online sequencer's reference mode uses it
// verbatim) and is what the equivalence property tests compare against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/client_registry.hpp"
#include "core/message.hpp"
#include "stats/convolution.hpp"
#include "stats/grid_density.hpp"

namespace tommy::core {

struct PrecedingConfig {
  /// Per-input grid resolution for the numeric path.
  std::size_t grid_points{1024};
  /// Convolution algorithm for the numeric path.
  stats::ConvolutionMethod method{stats::ConvolutionMethod::kFft};
  /// Force the numeric path even for Gaussian pairs (testing/ablation).
  bool force_numeric{false};
  /// Cache Δθ densities per ordered client pair.
  bool cache_difference_densities{true};
  /// Maximum number of cached Δθ densities (ordered pairs) kept at once;
  /// least-recently-used entries are evicted beyond it. 0 = unbounded
  /// (the seed behaviour). The lazily-filled critical-gap *scalars* are
  /// never evicted — only the O(grid_points) densities, which are the
  /// unbounded-memory risk for large non-Gaussian client sets (the
  /// worst case is n² densities of grid_points samples each).
  std::size_t difference_cache_capacity{0};
};

class PrecedingEngine {
 public:
  /// The registry must outlive the engine and already contain every client
  /// that will appear in queries.
  explicit PrecedingEngine(const ClientRegistry& registry,
                           PrecedingConfig config = {});

  /// P(T*_i < T*_j | T_i, T_j) in [0, 1].
  [[nodiscard]] double preceding_probability(const Message& i,
                                             const Message& j) const;

  /// T^F such that P(T* < T^F) = p_safe for message m (§3.5 safe
  /// emission): T^F = T_m + Q_{θ_m}(p_safe).
  [[nodiscard]] TimePoint safe_emission_time(const Message& m,
                                             double p_safe) const;

  /// Sequencer-clock instant before which no *future* message of `client`
  /// stamped after `high_water_stamp` can have been generated, with
  /// probability >= p_safe: hw + Q_θ(1 − p_safe). Used for the
  /// completeness gate (Q2).
  [[nodiscard]] TimePoint completeness_frontier(ClientId client,
                                                TimePoint high_water_stamp,
                                                double p_safe) const;

  /// Best estimate of a message's true time: T + E[θ]. Sorting by this is
  /// order-equivalent to the Gaussian tournament's unique topological
  /// order (Appendix A reduces the Gaussian relation to a comparison of
  /// corrected means).
  [[nodiscard]] TimePoint corrected_stamp(const Message& m) const;

  // ── Constant-time fast path (critical-gap reduction, see file header).
  // All fast_* accessors require a prior matching prime(); indices are the
  // registry's dense client indices (ClientRegistry::index_of).

  /// Builds (or refreshes) the flat constant tables for `threshold` /
  /// `p_safe`. Idempotent and cheap when already primed for the same
  /// parameters and registry generation. Logically const: the tables are
  /// memoized derived state, exactly like the Δθ density cache.
  ///
  /// With `prefill_pairs` every critical-gap slot is filled eagerly
  /// (numeric pairs pay their convolution + quantile here instead of on
  /// first query) and the per-row maxima are tightened to the exact
  /// values. After a prefilled prime the engine is IMMUTABLE under the
  /// whole fast_* surface — no lazy slot writes, no density-cache
  /// insertions — which is what lets N shard worker threads read one
  /// shared engine with no synchronization (see docs/architecture.md,
  /// "Threading model"). The default lazy fill remains for
  /// single-threaded use, where first-query filling spreads the O(n²)
  /// convolution cost over the warmup instead of the constructor.
  void prime(double threshold, double p_safe,
             bool prefill_pairs = false) const;

  /// True when the tables match (threshold, p_safe) and the registry has
  /// not announced since they were built.
  [[nodiscard]] bool fast_ready(double threshold, double p_safe) const;

  /// True when the current tables were built with `prefill_pairs` (every
  /// gap slot filled; fast_* queries mutate nothing).
  [[nodiscard]] bool fast_prefilled() const {
    return fast_.valid && fast_.prefilled;
  }

  /// True when prime() has run at all (any parameters). Lets sharing
  /// callers detect a parameter mismatch before thrashing the tables.
  [[nodiscard]] bool fast_primed() const { return fast_.valid; }

  /// Registry generation the current fast tables were built at (0 when
  /// never primed) — the epoch identity of a primed engine. Sessions
  /// pinned to a shared prefilled engine revalidate against this instead
  /// of the live registry generation, so a concurrent announce cannot
  /// perturb them until an explicit rebind installs a fresher engine.
  [[nodiscard]] std::uint64_t fast_generation() const {
    return fast_.generation;
  }

  /// True when prime() last ran with exactly these parameters (registry
  /// generation aside — a stale generation just means one cheap
  /// re-prime, not thrashing).
  [[nodiscard]] bool fast_params_match(double threshold,
                                       double p_safe) const {
    return fast_.valid && fast_.threshold == threshold &&
           fast_.p_safe == p_safe;
  }

  /// Corrected stamp in seconds for a message of dense-index client `ci`
  /// — identical arithmetic to corrected_stamp().
  [[nodiscard]] double fast_corrected(std::uint32_t ci, TimePoint stamp) const {
    return stamp.seconds() + fast_.mean[ci];
  }

  /// The per-client constants behind fast_corrected /
  /// fast_safe_emission_time, for callers (sessions) that cache them.
  [[nodiscard]] double fast_mean(std::uint32_t ci) const {
    return fast_.mean[ci];
  }
  [[nodiscard]] double fast_safe_offset(std::uint32_t ci) const {
    return fast_.safe_offset[ci];
  }

  /// safe_emission_time() as one addition.
  [[nodiscard]] TimePoint fast_safe_emission_time(std::uint32_t ci,
                                                  TimePoint stamp) const {
    return stamp + Duration(fast_.safe_offset[ci]);
  }

  /// completeness_frontier() as one addition.
  [[nodiscard]] TimePoint fast_completeness_frontier(
      std::uint32_t ci, TimePoint high_water_stamp) const {
    return high_water_stamp + Duration(fast_.frontier_offset[ci]);
  }

  /// g*_{ij}; lazily fills numeric-path entries (one convolution once).
  [[nodiscard]] double fast_critical_gap(std::uint32_t ci,
                                         std::uint32_t cj) const;

  /// `preceding_probability(a, b) > threshold` for corrected stamps
  /// (c_a from client index ci, c_b from client index cj).
  [[nodiscard]] bool fast_confidently_preceding(std::uint32_t ci,
                                                double corrected_a,
                                                std::uint32_t cj,
                                                double corrected_b) const {
    return corrected_b - corrected_a > fast_critical_gap(ci, cj);
  }

  /// Ḡ_i ≥ max_j g*_{ij}: if c_b − c_a > Ḡ_i then b is confidently after
  /// a regardless of b's client. Drives the windowed closure scans.
  [[nodiscard]] double fast_max_gap_from(std::uint32_t ci) const {
    return fast_.max_gap_from[ci];
  }

  /// max_i Ḡ_i — the widest possible uncertainty window anywhere.
  [[nodiscard]] double fast_global_max_gap() const {
    return fast_.global_max_gap;
  }

  /// Number of Δθ densities currently cached (numeric path telemetry).
  [[nodiscard]] std::size_t cached_pairs() const { return cache_.size(); }

  [[nodiscard]] const ClientRegistry& registry() const { return registry_; }
  [[nodiscard]] const PrecedingConfig& config() const { return config_; }

 private:
  [[nodiscard]] const stats::GridDensity& difference_density_for(
      ClientId from, ClientId to) const;
  [[nodiscard]] double numeric_critical_gap(std::uint32_t ci,
                                            std::uint32_t cj) const;
  void build_fast_tables(double threshold, double p_safe) const;
  void prefill_critical_gaps() const;

  const ClientRegistry& registry_;
  PrecedingConfig config_;

  struct PairHash {
    std::size_t operator()(const std::pair<ClientId, ClientId>& p) const {
      // splitmix64-style mix of the two 32-bit ids packed into one word;
      // avoids the clustering a plain xor of std::hash values exhibits on
      // dense id ranges.
      std::uint64_t x = (static_cast<std::uint64_t>(p.first.value()) << 32) |
                        static_cast<std::uint64_t>(p.second.value());
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };
  using PairKey = std::pair<ClientId, ClientId>;
  struct CachedDensity {
    std::unique_ptr<stats::GridDensity> density;
    // Position in lru_; only maintained when the cache is bounded.
    std::list<PairKey>::iterator lru_position;
  };
  // Keyed (i, j) -> density of θ_j − θ_i. Mutable: a logically-const query
  // memoizes the expensive convolution. Cleared when the registry
  // generation moves on (a re-announce makes every cached density stale).
  // When config_.difference_cache_capacity > 0, lru_ orders the keys most-
  // recently-used first and the map is trimmed from the back on insert.
  mutable std::unordered_map<PairKey, CachedDensity, PairHash> cache_;
  mutable std::list<PairKey> lru_;
  mutable std::uint64_t cache_generation_{0};

  // Flat constant tables for the fast path (see file header). Mutable for
  // the same reason as cache_: memoized derived state behind const
  // queries.
  struct FastTables {
    bool valid{false};
    bool prefilled{false};
    double threshold{0.0};
    double p_safe{0.0};
    std::uint64_t generation{0};  // registry generation at build time
    std::size_t n{0};
    std::vector<double> mean;             // [n]   E[θ_c]
    std::vector<double> safe_offset;      // [n]   Q_c(p_safe)
    std::vector<double> frontier_offset;  // [n]   Q_c(1 − p_safe)
    std::vector<std::uint8_t> gaussian;   // [n]   closed form eligible
    std::vector<double> variance;         // [n]   Var[θ_c]
    std::vector<double> upper_width;      // [n]   eff-support hi − μ_c
    std::vector<double> lower_width;      // [n]   μ_c − eff-support lo
    std::vector<double> support_width;    // [n]   eff-support width
    std::vector<double> critical_gap;     // [n·n] g*_{ij}; NaN = lazy
    std::vector<double> max_gap_from;     // [n]   Ḡ_i ≥ max_j g*_{ij}
    double global_max_gap{0.0};
  };
  mutable FastTables fast_;
};

}  // namespace tommy::core
