// The preceding-probability engine: p = P(T*_i < T*_j | T_i, T_j), the
// weight of the likely-happened-before relation i —p→ j (§3.2).
//
// Two evaluation paths:
//  * Gaussian closed form (§3.2): when both clients' offsets are Gaussian,
//      p = Φ((T_j + μ_j − T_i − μ_i) / sqrt(σ_i² + σ_j²)).
//    (The paper's inline formula carries a sign typo on the means; see
//    DESIGN.md "Known paper errata". This form matches the paper's own
//    model T* = T + θ and its Appendix A.)
//  * Numeric path (§3.3): build the density of Δθ = θ_j − θ_i by FFT
//    convolution of f_{θj} with the reflection of f_{θi}, then
//      p = P(Δθ > T_i − T_j) = 1 − F_Δθ(T_i − T_j).
//    The per-ordered-client-pair Δθ CDF is cached, so the convolution cost
//    is paid once per pair, not once per message pair.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>

#include "core/client_registry.hpp"
#include "core/message.hpp"
#include "stats/convolution.hpp"
#include "stats/grid_density.hpp"

namespace tommy::core {

struct PrecedingConfig {
  /// Per-input grid resolution for the numeric path.
  std::size_t grid_points{1024};
  /// Convolution algorithm for the numeric path.
  stats::ConvolutionMethod method{stats::ConvolutionMethod::kFft};
  /// Force the numeric path even for Gaussian pairs (testing/ablation).
  bool force_numeric{false};
  /// Cache Δθ densities per ordered client pair.
  bool cache_difference_densities{true};
};

class PrecedingEngine {
 public:
  /// The registry must outlive the engine and already contain every client
  /// that will appear in queries.
  explicit PrecedingEngine(const ClientRegistry& registry,
                           PrecedingConfig config = {});

  /// P(T*_i < T*_j | T_i, T_j) in [0, 1].
  [[nodiscard]] double preceding_probability(const Message& i,
                                             const Message& j) const;

  /// T^F such that P(T* < T^F) = p_safe for message m (§3.5 safe
  /// emission): T^F = T_m + Q_{θ_m}(p_safe).
  [[nodiscard]] TimePoint safe_emission_time(const Message& m,
                                             double p_safe) const;

  /// Sequencer-clock instant before which no *future* message of `client`
  /// stamped after `high_water_stamp` can have been generated, with
  /// probability >= p_safe: hw + Q_θ(1 − p_safe). Used for the
  /// completeness gate (Q2).
  [[nodiscard]] TimePoint completeness_frontier(ClientId client,
                                                TimePoint high_water_stamp,
                                                double p_safe) const;

  /// Best estimate of a message's true time: T + E[θ]. Sorting by this is
  /// order-equivalent to the Gaussian tournament's unique topological
  /// order (Appendix A reduces the Gaussian relation to a comparison of
  /// corrected means).
  [[nodiscard]] TimePoint corrected_stamp(const Message& m) const;

  /// Number of Δθ densities currently cached (numeric path telemetry).
  [[nodiscard]] std::size_t cached_pairs() const { return cache_.size(); }

  [[nodiscard]] const ClientRegistry& registry() const { return registry_; }
  [[nodiscard]] const PrecedingConfig& config() const { return config_; }

 private:
  [[nodiscard]] const stats::GridDensity& difference_density_for(
      ClientId from, ClientId to) const;

  const ClientRegistry& registry_;
  PrecedingConfig config_;

  struct PairHash {
    std::size_t operator()(const std::pair<ClientId, ClientId>& p) const {
      return std::hash<ClientId>{}(p.first) * 1000003u ^
             std::hash<ClientId>{}(p.second);
    }
  };
  // Keyed (i, j) -> density of θ_j − θ_i. Mutable: a logically-const query
  // memoizes the expensive convolution.
  mutable std::unordered_map<std::pair<ClientId, ClientId>,
                             std::unique_ptr<stats::GridDensity>, PairHash>
      cache_;
};

}  // namespace tommy::core
