// Common interface of all offline sequencers: consume a set of
// timestamped messages (all already at the sequencer, §3's starting
// assumption) and produce rank-ordered batches.
#pragma once

#include <string>
#include <vector>

#include "core/message.hpp"

namespace tommy::core {

class Sequencer {
 public:
  virtual ~Sequencer() = default;

  /// Orders the given messages into batches. Input order carries no
  /// meaning except for baselines that read Message::arrival.
  [[nodiscard]] virtual SequencerResult sequence(
      std::vector<Message> messages) = 0;

  /// Short identifier used in bench output ("tommy", "truetime", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace tommy::core
