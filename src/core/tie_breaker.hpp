// Fair total order extension (§5 "Extension to Fair Total Order"): some
// applications need individual messages, not batches. Breaking ties
// deterministically would systematically favour some clients; the paper
// proposes random tie-breaking so fairness holds stochastically over time.
// FairTieBreaker shuffles each batch with a seeded RNG and keeps a ledger
// of per-client outcomes so long-run fairness is measurable.
#pragma once

#include "common/rng.hpp"
#include "core/message.hpp"
#include "metrics/batch_stats.hpp"

namespace tommy::core {

class FairTieBreaker {
 public:
  explicit FairTieBreaker(std::uint64_t seed);

  /// Returns the batch's messages in a uniformly random order and records
  /// which client won the first slot.
  [[nodiscard]] std::vector<Message> total_order(const Batch& batch);

  /// Flattens an entire sequencing into a total order of messages.
  [[nodiscard]] std::vector<Message> total_order(
      const SequencerResult& result);

  [[nodiscard]] const metrics::ClientWinLedger& ledger() const {
    return ledger_;
  }

 private:
  Rng rng_;
  metrics::ClientWinLedger ledger_;
};

}  // namespace tommy::core
