// Ordered holdback buffer — the O(log n) pending-message structure.
//
// The sequencer's holdback buffer grows exactly when delay distributions
// are adversarial (that is the paper's mechanism: uncertain messages wait),
// so its insert cost under backlog IS the worst-case hot path. A flat
// sorted sequence pays O(backlog) element moves per insert — at 200k held
// messages every transport converges to the same ~10-16k msg/s wall. This
// container replaces it with a counted, chunked B-tree-style sequence:
//
//   chunks_ : deque of fixed-capacity sorted chunks, globally ordered
//             (every element of chunk i precedes every element of
//             chunk i+1 under Less)
//
// An insert is a binary search over chunk back-keys (O(log(n/B))), a
// lower_bound inside one chunk (O(log B)), and one bounded vector insert
// (<= B element moves, B = kChunkCapacity). Overfull chunks split in two;
// a prefix pop drops whole chunks. Total per-insert cost is O(log n)
// comparisons plus an O(B) constant-bound move — independent of the
// backlog depth, which is the bound the adversarial suite gates on.
//
// The interface is shaped by what OnlineSequencer's closure scans need:
// in-order bidirectional iteration from the front (head-batch emission and
// the windowed uncertainty scans), an O(prefix/B) iterator_at for the
// head-boundary scan at insert, prefix pops for emission, and whole-buffer
// extract/assign for epoch refresh (re-key + re-sort + rebuild).
//
// Keys are expected unique under Less (the sequencer keys by
// (corrected stamp, message id)); equal keys are tolerated but order among
// them is unspecified.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace tommy::core {

template <typename T, typename Less>
class HoldbackBuffer {
 public:
  /// Chunk capacity: large enough that the per-insert O(B) move cost stays
  /// in one or two cache lines' worth of work, small enough that a split
  /// is cheap. Splits produce half-full chunks, so steady-state occupancy
  /// is ~B/2..B.
  static constexpr std::size_t kChunkCapacity = 256;

  explicit HoldbackBuffer(Less less = Less{}) : less_(std::move(less)) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  class const_iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;

    reference operator*() const {
      return owner_->chunks_[chunk_]->items[item_];
    }
    pointer operator->() const { return &**this; }

    const_iterator& operator++() {
      if (++item_ == owner_->chunks_[chunk_]->items.size()) {
        ++chunk_;
        item_ = 0;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    const_iterator& operator--() {
      if (item_ == 0) {
        --chunk_;
        item_ = owner_->chunks_[chunk_]->items.size() - 1;
      } else {
        --item_;
      }
      return *this;
    }
    const_iterator operator--(int) {
      const_iterator copy = *this;
      --*this;
      return copy;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.chunk_ == b.chunk_ && a.item_ == b.item_;
    }

   private:
    friend class HoldbackBuffer;
    const_iterator(const HoldbackBuffer* owner, std::size_t chunk,
                   std::size_t item)
        : owner_(owner), chunk_(chunk), item_(item) {}

    const HoldbackBuffer* owner_{nullptr};
    std::size_t chunk_{0};
    std::size_t item_{0};
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, chunks_.size(), 0);
  }

  /// Iterator to the element at prefix index `idx` (== end() at size()).
  /// Costs O(idx / B) chunk hops — cheap for the head-prefix positions the
  /// sequencer's insert-time boundary scan asks for, NOT a general O(log n)
  /// random access.
  [[nodiscard]] const_iterator iterator_at(std::size_t idx) const {
    TOMMY_EXPECTS(idx <= size_);
    std::size_t chunk = 0;
    while (chunk < chunks_.size() && idx >= chunks_[chunk]->items.size()) {
      idx -= chunks_[chunk]->items.size();
      ++chunk;
    }
    return const_iterator(this, chunk, idx);
  }

  [[nodiscard]] const T& front() const {
    TOMMY_EXPECTS(size_ > 0);
    return chunks_.front()->items.front();
  }

  /// Ordered insert: O(log n) comparisons + one bounded in-chunk move.
  void insert(T value) {
    if (chunks_.empty()) {
      chunks_.push_back(make_chunk());
      chunks_.front()->items.push_back(std::move(value));
      size_ = 1;
      return;
    }
    // First chunk whose back key is >= value owns the insert position;
    // a value beyond every back key appends to the last chunk.
    std::size_t lo = 0;
    std::size_t hi = chunks_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (less_(chunks_[mid]->items.back(), value)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == chunks_.size()) --lo;
    auto& items = chunks_[lo]->items;
    const auto pos = std::lower_bound(items.begin(), items.end(), value, less_);
    items.insert(pos, std::move(value));
    ++size_;
    if (items.size() > kChunkCapacity) split(lo);
  }

  /// Drops the first `k` elements: whole leading chunks in O(1) each, plus
  /// one bounded partial-chunk erase.
  void pop_front(std::size_t k) {
    TOMMY_EXPECTS(k <= size_);
    size_ -= k;
    while (k > 0 && k >= chunks_.front()->items.size()) {
      k -= chunks_.front()->items.size();
      chunks_.pop_front();
    }
    if (k > 0) {
      auto& items = chunks_.front()->items;
      items.erase(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

  /// Rebuilds from an already-sorted sequence (epoch refresh: extract,
  /// re-key, std::sort, assign). Chunks are filled to the post-split size
  /// so the rebuild does not trigger an immediate cascade of splits.
  void assign_sorted(std::vector<T> items) {
    clear();
    size_ = items.size();
    constexpr std::size_t kFill = kChunkCapacity / 2;
    for (std::size_t i = 0; i < items.size(); i += kFill) {
      const std::size_t e = std::min(items.size(), i + kFill);
      auto chunk = make_chunk();
      chunk->items.assign(std::make_move_iterator(items.begin() +
                                                  static_cast<std::ptrdiff_t>(i)),
                          std::make_move_iterator(items.begin() +
                                                  static_cast<std::ptrdiff_t>(e)));
      chunks_.push_back(std::move(chunk));
    }
  }

  /// Moves every element out in order, leaving the buffer empty.
  [[nodiscard]] std::vector<T> extract_all() {
    std::vector<T> out;
    out.reserve(size_);
    for (auto& chunk : chunks_) {
      for (T& item : chunk->items) out.push_back(std::move(item));
    }
    clear();
    return out;
  }

 private:
  struct Chunk {
    std::vector<T> items;
  };

  [[nodiscard]] static std::unique_ptr<Chunk> make_chunk() {
    auto chunk = std::make_unique<Chunk>();
    // +1: an insert may momentarily hold capacity+1 elements before the
    // split; reserving it keeps every in-chunk insert reallocation-free.
    chunk->items.reserve(kChunkCapacity + 1);
    return chunk;
  }

  void split(std::size_t ci) {
    auto& items = chunks_[ci]->items;
    auto right = make_chunk();
    const std::size_t half = items.size() / 2;
    right->items.assign(
        std::make_move_iterator(items.begin() +
                                static_cast<std::ptrdiff_t>(half)),
        std::make_move_iterator(items.end()));
    items.erase(items.begin() + static_cast<std::ptrdiff_t>(half), items.end());
    chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                   std::move(right));
  }

  Less less_;
  // deque, not vector: pop_front of a fully-drained leading chunk is O(1)
  // while chunk-level binary search keeps random access.
  std::deque<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_{0};
};

}  // namespace tommy::core
