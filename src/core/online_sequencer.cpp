#include "core/online_sequencer.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tommy::core {

OnlineSequencer::OnlineSequencer(const ClientRegistry& registry,
                                 std::vector<ClientId> expected_clients,
                                 OnlineConfig config)
    : registry_(registry),
      config_(config),
      engine_(registry, config.preceding),
      expected_clients_(std::move(expected_clients)) {
  TOMMY_EXPECTS(config.threshold > 0.5 && config.threshold < 1.0);
  TOMMY_EXPECTS(config.p_safe > 0.5 && config.p_safe < 1.0);
  TOMMY_EXPECTS(!expected_clients_.empty());
  for (ClientId c : expected_clients_) {
    TOMMY_EXPECTS(registry_.contains(c));
    clients_[c] = ClientState{};
  }
}

void OnlineSequencer::note_alive(ClientId c, TimePoint local_stamp,
                                 TimePoint now) {
  const auto it = clients_.find(c);
  TOMMY_EXPECTS(it != clients_.end());  // unknown clients are a config error
  ClientState& state = it->second;
  state.high_water = std::max(state.high_water, local_stamp);
  state.last_heard = std::max(state.last_heard, now);
  state.heard = true;
}

bool OnlineSequencer::confidently_after(const Message& later,
                                        const Message& earlier) const {
  return engine_.preceding_probability(earlier, later) > config_.threshold;
}

void OnlineSequencer::on_message(const Message& m) {
  note_alive(m.client, m.stamp, m.arrival);

  // Fairness-violation check: did this message confidently belong at or
  // before a rank we already emitted? (The safe-emission machinery makes
  // this rare — with frequency controlled by p_safe.)
  for (const Message& emitted : last_emitted_) {
    if (!confidently_after(m, emitted)) {
      ++fairness_violations_;
      break;
    }
  }

  // Insert keeping the buffer sorted by corrected stamp.
  const TimePoint key = engine_.corrected_stamp(m);
  const auto pos = std::lower_bound(
      buffer_.begin(), buffer_.end(), m,
      [this, key](const Message& lhs, const Message& rhs) {
        const TimePoint lk = engine_.corrected_stamp(lhs);
        const TimePoint rk = engine_.corrected_stamp(rhs);
        if (lk != rk) return lk < rk;
        return lhs.id < rhs.id;
      });
  buffer_.insert(pos, m);
}

void OnlineSequencer::on_heartbeat(ClientId c, TimePoint local_stamp,
                                   TimePoint now) {
  note_alive(c, local_stamp, now);
}

std::size_t OnlineSequencer::head_batch_size() const {
  TOMMY_ASSERT(!buffer_.empty());
  // Closure rule (see BatchRule::kClosure): the head batch ends at the
  // first position e such that no uncertain pair (i < e <= j) crosses it.
  // "reach" tracks the furthest uncertain partner of any absorbed row; any
  // candidate boundary at or before reach is blocked, so we jump past it.
  const std::size_t n = buffer_.size();
  std::size_t reach = 0;
  std::size_t absorbed = 0;
  std::size_t e = 1;
  while (e < n) {
    for (; absorbed < e; ++absorbed) {
      for (std::size_t j = absorbed + 1; j < n; ++j) {
        if (!confidently_after(buffer_[j], buffer_[absorbed])) {
          reach = std::max(reach, j);
        }
      }
    }
    if (reach < e) return e;  // clean cut: head batch is buffer_[0..e)
    e = reach + 1;
  }
  return n;
}

TimePoint OnlineSequencer::safe_time_for(std::size_t batch_size) const {
  TimePoint t_b = TimePoint(-std::numeric_limits<double>::infinity());
  for (std::size_t k = 0; k < batch_size; ++k) {
    t_b = std::max(t_b, engine_.safe_emission_time(buffer_[k], config_.p_safe));
  }
  return t_b;
}

bool OnlineSequencer::completeness_satisfied(TimePoint t_b,
                                             TimePoint now) const {
  for (ClientId c : expected_clients_) {
    const ClientState& state = clients_.at(c);
    const bool timed_out =
        config_.client_silence_timeout.is_finite() &&
        (!state.heard ||
         now - state.last_heard > config_.client_silence_timeout);
    if (timed_out) continue;  // liveness guard: drop from the gate
    if (!state.heard) return false;
    const TimePoint frontier =
        engine_.completeness_frontier(c, state.high_water, config_.p_safe);
    if (frontier < t_b) return false;
  }
  return true;
}

std::vector<EmissionRecord> OnlineSequencer::poll(TimePoint now) {
  std::vector<EmissionRecord> emitted;
  while (!buffer_.empty()) {
    const std::size_t size = head_batch_size();
    const TimePoint t_b = safe_time_for(size);
    if (now < t_b) break;
    if (!completeness_satisfied(t_b, now)) break;

    EmissionRecord record;
    record.batch.rank = next_rank_++;
    record.batch.messages.assign(
        buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(size));
    record.emitted_at = now;
    record.safe_time = t_b;
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(size));

    last_emitted_ = record.batch.messages;
    emitted.push_back(std::move(record));
  }
  return emitted;
}

std::vector<EmissionRecord> OnlineSequencer::flush(TimePoint now) {
  std::vector<EmissionRecord> emitted;
  while (!buffer_.empty()) {
    const std::size_t size = head_batch_size();
    EmissionRecord record;
    record.batch.rank = next_rank_++;
    record.batch.messages.assign(
        buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(size));
    record.emitted_at = now;
    record.safe_time = safe_time_for(size);
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(size));
    last_emitted_ = record.batch.messages;
    emitted.push_back(std::move(record));
  }
  return emitted;
}

TimePoint OnlineSequencer::next_safe_time() const {
  if (buffer_.empty()) return TimePoint::infinite_future();
  return safe_time_for(head_batch_size());
}

std::vector<ClientId> OnlineSequencer::timed_out_clients(TimePoint now) const {
  std::vector<ClientId> out;
  if (!config_.client_silence_timeout.is_finite()) return out;
  for (ClientId c : expected_clients_) {
    const ClientState& state = clients_.at(c);
    if (!state.heard ||
        now - state.last_heard > config_.client_silence_timeout) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace tommy::core
