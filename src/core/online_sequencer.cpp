#include "core/online_sequencer.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tommy::core {

OnlineSequencer::OnlineSequencer(const ClientRegistry& registry,
                                 std::vector<ClientId> expected_clients,
                                 OnlineConfig config)
    : registry_(registry),
      config_(config),
      engine_(registry, config.preceding),
      expected_clients_(std::move(expected_clients)) {
  TOMMY_EXPECTS(config.threshold > 0.5 && config.threshold < 1.0);
  TOMMY_EXPECTS(config.p_safe > 0.5 && config.p_safe < 1.0);
  TOMMY_EXPECTS(!expected_clients_.empty());
  clients_.reserve(expected_clients_.size());
  for (ClientId c : expected_clients_) {
    TOMMY_EXPECTS(registry_.contains(c));
    const auto [it, inserted] = expected_index_.emplace(
        c, static_cast<std::uint32_t>(clients_.size()));
    if (!inserted) continue;  // duplicate expected client: one gate entry
    ClientState state;
    state.id = c;
    state.cindex = registry_.index_of(c);
    clients_.push_back(state);
  }
  if (!config_.reference_mode) {
    engine_.prime(config_.threshold, config_.p_safe);
  }
}

void OnlineSequencer::note_alive(ClientId c, TimePoint local_stamp,
                                 TimePoint now) {
  const auto it = expected_index_.find(c);
  TOMMY_EXPECTS(it != expected_index_.end());  // unknown clients are a
                                               // config error
  ClientState& state = clients_[it->second];
  state.high_water = std::max(state.high_water, local_stamp);
  state.last_heard = std::max(state.last_heard, now);
  state.heard = true;
}

void OnlineSequencer::refresh_entry(Buffered& entry) const {
  entry.cindex = registry_.index_of(entry.msg.client);
  if (config_.reference_mode) {
    entry.corrected = engine_.corrected_stamp(entry.msg).seconds();
    entry.safe_time = engine_.safe_emission_time(entry.msg, config_.p_safe);
  } else {
    entry.corrected = engine_.fast_corrected(entry.cindex, entry.msg.stamp);
    entry.safe_time =
        engine_.fast_safe_emission_time(entry.cindex, entry.msg.stamp);
  }
}

OnlineSequencer::Buffered OnlineSequencer::make_entry(const Message& m) const {
  Buffered entry;
  entry.msg = m;
  refresh_entry(entry);
  return entry;
}

void OnlineSequencer::maybe_reprime() {
  if (config_.reference_mode) return;
  if (engine_.fast_ready(config_.threshold, config_.p_safe)) return;
  engine_.prime(config_.threshold, config_.p_safe);
  // Distributions changed under us: refresh every cached constant (buffer
  // order is preserved — exactly like the naive path, which re-evaluates
  // probabilities per query but never re-sorts what it already buffered).
  // The refreshed corrected stamps may no longer be monotone in the
  // stored order, which disables the windowed early exits until order is
  // restored (see header).
  for (Buffered& entry : buffer_) refresh_entry(entry);
  for (Buffered& entry : last_emitted_) refresh_entry(entry);
  buffer_sorted_ = std::is_sorted(
      buffer_.begin(), buffer_.end(),
      [](const Buffered& lhs, const Buffered& rhs) {
        if (lhs.corrected != rhs.corrected) {
          return lhs.corrected < rhs.corrected;
        }
        return lhs.msg.id < rhs.msg.id;
      });
  head_valid_ = false;
}

bool OnlineSequencer::confidently_after(const Message& later,
                                        const Message& earlier) const {
  return engine_.preceding_probability(earlier, later) > config_.threshold;
}

void OnlineSequencer::on_message(const Message& m) {
  maybe_reprime();
  note_alive(m.client, m.stamp, m.arrival);

  Buffered entry = make_entry(m);

  // Fairness-violation check: did this message confidently belong at or
  // before a rank we already emitted? (The safe-emission machinery makes
  // this rare — with frequency controlled by p_safe.)
  if (config_.reference_mode) {
    for (const Buffered& emitted : last_emitted_) {
      if (!confidently_after(m, emitted.msg)) {
        ++fairness_violations_;
        break;
      }
    }
  } else {
    for (const Buffered& emitted : last_emitted_) {
      const double diff = entry.corrected - emitted.corrected;
      if (!(diff > engine_.fast_critical_gap(emitted.cindex, entry.cindex))) {
        ++fairness_violations_;
        break;
      }
    }
  }

  if (config_.reference_mode) {
    // The naive comparator: recomputes both sides' corrected stamps per
    // comparison, exactly as the original implementation did.
    const auto pos = std::lower_bound(
        buffer_.begin(), buffer_.end(), entry,
        [this](const Buffered& lhs, const Buffered& rhs) {
          const TimePoint lk = engine_.corrected_stamp(lhs.msg);
          const TimePoint rk = engine_.corrected_stamp(rhs.msg);
          if (lk != rk) return lk < rk;
          return lhs.msg.id < rhs.msg.id;
        });
    buffer_.insert(pos, std::move(entry));
    return;
  }
  insert_fast(std::move(entry));
}

void OnlineSequencer::insert_fast(Buffered entry) {
  const auto pos = std::lower_bound(
      buffer_.begin(), buffer_.end(), entry,
      [](const Buffered& lhs, const Buffered& rhs) {
        if (lhs.corrected != rhs.corrected) {
          return lhs.corrected < rhs.corrected;
        }
        return lhs.msg.id < rhs.msg.id;
      });
  const auto idx = static_cast<std::size_t>(pos - buffer_.begin());

  if (head_valid_) {
    if (idx < head_size_) {
      // Landed inside the head batch: positions (and possibly the cut)
      // moved.
      head_valid_ = false;
    } else {
      // Beyond the head. Inserts can only add uncertain pairs, never
      // remove them, so earlier (blocked) cuts stay blocked and the cut at
      // head_size_ survives iff the new entry is confidently after every
      // head row. Check exactly, nearest row first; once the gap exceeds
      // the global maximum critical gap no farther row can be uncertain —
      // an early exit that is only valid while the buffer is sorted.
      for (std::size_t i = head_size_; i-- > 0;) {
        const double diff = entry.corrected - buffer_[i].corrected;
        if (buffer_sorted_ && diff > engine_.fast_global_max_gap()) break;
        if (!(diff >
              engine_.fast_critical_gap(buffer_[i].cindex, entry.cindex))) {
          head_valid_ = false;
          break;
        }
      }
    }
  }
  buffer_.insert(pos, std::move(entry));
}

void OnlineSequencer::on_heartbeat(ClientId c, TimePoint local_stamp,
                                   TimePoint now) {
  maybe_reprime();
  note_alive(c, local_stamp, now);
}

void OnlineSequencer::recompute_head() const {
  TOMMY_ASSERT(!buffer_.empty());
  // Closure rule (see BatchRule::kClosure): the head batch ends at the
  // first position e such that no uncertain pair (i < e <= j) crosses it.
  // "reach" tracks the furthest uncertain partner of any absorbed row; any
  // candidate boundary at or before reach is blocked, so we jump past it.
  // A row's uncertain partners all lie within its maximum critical gap
  // (diff > Ḡ_i ⟹ diff > g*_{ij} ∀j), so each row's scan stops at its
  // uncertainty window instead of running to the end of the buffer —
  // valid only while the buffer is sorted by corrected stamp; after a
  // mid-run re-announce broke the order the scan degrades to the full
  // sweep (still constant work per pair) until the buffer drains.
  const std::size_t n = buffer_.size();
  std::size_t reach = 0;
  std::size_t absorbed = 0;
  std::size_t e = 1;
  TimePoint safe(-std::numeric_limits<double>::infinity());
  while (true) {
    for (; absorbed < e; ++absorbed) {
      const Buffered& row = buffer_[absorbed];
      safe = std::max(safe, row.safe_time);
      const double window = engine_.fast_max_gap_from(row.cindex);
      for (std::size_t j = absorbed + 1; j < n; ++j) {
        const double diff = buffer_[j].corrected - row.corrected;
        if (buffer_sorted_ && diff > window) break;
        if (!(diff >
              engine_.fast_critical_gap(row.cindex, buffer_[j].cindex))) {
          reach = std::max(reach, j);
        }
      }
    }
    if (reach < e) break;  // clean cut: head batch is buffer_[0..e)
    e = reach + 1;
  }
  head_size_ = e;
  head_safe_ = safe;
  head_valid_ = true;
}

std::size_t OnlineSequencer::head_batch_size_naive() const {
  TOMMY_ASSERT(!buffer_.empty());
  const std::size_t n = buffer_.size();
  std::size_t reach = 0;
  std::size_t absorbed = 0;
  std::size_t e = 1;
  while (e < n) {
    for (; absorbed < e; ++absorbed) {
      for (std::size_t j = absorbed + 1; j < n; ++j) {
        if (!confidently_after(buffer_[j].msg, buffer_[absorbed].msg)) {
          reach = std::max(reach, j);
        }
      }
    }
    if (reach < e) return e;  // clean cut: head batch is buffer_[0..e)
    e = reach + 1;
  }
  return n;
}

TimePoint OnlineSequencer::safe_time_for_naive(std::size_t batch_size) const {
  TimePoint t_b = TimePoint(-std::numeric_limits<double>::infinity());
  for (std::size_t k = 0; k < batch_size; ++k) {
    t_b = std::max(t_b,
                   engine_.safe_emission_time(buffer_[k].msg, config_.p_safe));
  }
  return t_b;
}

bool OnlineSequencer::completeness_satisfied(TimePoint t_b,
                                             TimePoint now) const {
  for (const ClientState& state : clients_) {
    const bool timed_out =
        config_.client_silence_timeout.is_finite() &&
        (!state.heard ||
         now - state.last_heard > config_.client_silence_timeout);
    if (timed_out) continue;  // liveness guard: drop from the gate
    if (!state.heard) return false;
    const TimePoint frontier =
        engine_.fast_completeness_frontier(state.cindex, state.high_water);
    if (frontier < t_b) return false;
  }
  return true;
}

bool OnlineSequencer::completeness_satisfied_naive(TimePoint t_b,
                                                   TimePoint now) const {
  for (const ClientState& state : clients_) {
    const bool timed_out =
        config_.client_silence_timeout.is_finite() &&
        (!state.heard ||
         now - state.last_heard > config_.client_silence_timeout);
    if (timed_out) continue;  // liveness guard: drop from the gate
    if (!state.heard) return false;
    const TimePoint frontier =
        engine_.completeness_frontier(state.id, state.high_water,
                                      config_.p_safe);
    if (frontier < t_b) return false;
  }
  return true;
}

void OnlineSequencer::emit_head(std::size_t size, TimePoint t_b, TimePoint now,
                                std::vector<EmissionRecord>& out) {
  EmissionRecord record;
  record.batch.rank = next_rank_++;
  record.batch.messages.reserve(size);
  last_emitted_.clear();
  last_emitted_.reserve(size);
  for (std::size_t k = 0; k < size; ++k) {
    record.batch.messages.push_back(buffer_[k].msg);
    last_emitted_.push_back(buffer_[k]);
  }
  record.emitted_at = now;
  record.safe_time = t_b;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(size));
  if (buffer_.empty()) buffer_sorted_ = true;  // vacuously restored
  head_valid_ = false;
  out.push_back(std::move(record));
}

std::vector<EmissionRecord> OnlineSequencer::drain(TimePoint now,
                                                   bool ignore_gates) {
  std::vector<EmissionRecord> emitted;
  while (!buffer_.empty()) {
    std::size_t size;
    TimePoint t_b;
    if (config_.reference_mode) {
      size = head_batch_size_naive();
      t_b = safe_time_for_naive(size);
    } else {
      if (!head_valid_) recompute_head();
      size = head_size_;
      t_b = head_safe_;
    }
    if (!ignore_gates) {
      if (now < t_b) break;
      const bool complete = config_.reference_mode
                                ? completeness_satisfied_naive(t_b, now)
                                : completeness_satisfied(t_b, now);
      if (!complete) break;
    }
    emit_head(size, t_b, now, emitted);
  }
  return emitted;
}

std::vector<EmissionRecord> OnlineSequencer::poll(TimePoint now) {
  maybe_reprime();
  return drain(now, /*ignore_gates=*/false);
}

std::vector<EmissionRecord> OnlineSequencer::flush(TimePoint now) {
  maybe_reprime();
  return drain(now, /*ignore_gates=*/true);
}

TimePoint OnlineSequencer::next_safe_time() const {
  if (buffer_.empty()) return TimePoint::infinite_future();
  if (config_.reference_mode) {
    return safe_time_for_naive(head_batch_size_naive());
  }
  if (!head_valid_) recompute_head();
  return head_safe_;
}

std::vector<ClientId> OnlineSequencer::timed_out_clients(TimePoint now) const {
  std::vector<ClientId> out;
  if (!config_.client_silence_timeout.is_finite()) return out;
  for (const ClientState& state : clients_) {
    if (!state.heard ||
        now - state.last_heard > config_.client_silence_timeout) {
      out.push_back(state.id);
    }
  }
  return out;
}

}  // namespace tommy::core
