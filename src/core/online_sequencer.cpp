#include "core/online_sequencer.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tommy::core {

namespace {

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kNotInHeap = std::numeric_limits<std::uint32_t>::max();

/// Adapts the vector-returning poll/flush overloads onto the sink drain.
class VectorSink final : public EmissionSink {
 public:
  explicit VectorSink(std::vector<EmissionRecord>& out) : out_(out) {}
  void on_emission(EmissionRecord&& record, std::uint32_t) override {
    out_.push_back(std::move(record));
  }

 private:
  std::vector<EmissionRecord>& out_;
};

std::shared_ptr<const PrecedingEngine> require_engine(
    std::shared_ptr<const PrecedingEngine> engine) {
  TOMMY_EXPECTS(engine != nullptr);
  return engine;
}

}  // namespace

OnlineSequencer::OnlineSequencer(const ClientRegistry& registry,
                                 std::vector<ClientId> expected_clients,
                                 OnlineConfig config)
    : engine_ptr_(std::make_shared<const PrecedingEngine>(registry,
                                                          config.preceding)),
      engine_(engine_ptr_.get()),
      registry_(registry),
      config_(config),
      expected_clients_(std::move(expected_clients)) {
  init_expected_clients();
}

OnlineSequencer::OnlineSequencer(std::shared_ptr<const PrecedingEngine> engine,
                                 std::vector<ClientId> expected_clients,
                                 OnlineConfig config, bool pinned)
    : engine_ptr_(require_engine(std::move(engine))),
      engine_(engine_ptr_.get()),
      registry_(engine_ptr_->registry()),
      config_(config),
      pinned_(pinned),
      expected_clients_(std::move(expected_clients)) {
  // Every sequencer sharing an engine must agree on (threshold, p_safe):
  // a mismatch would not be wrong, but each caller would re-prime the
  // whole engine on every ingest/poll — a silent orders-of-magnitude
  // slowdown. Catch it at construction instead.
  TOMMY_EXPECTS(config_.reference_mode || !engine_->fast_primed() ||
                engine_->fast_params_match(config_.threshold, config_.p_safe));
  // Pinned mode relies on the engine being a finished, immutable epoch:
  // prefilled tables, matching parameters, no lazy fills ever.
  TOMMY_EXPECTS(!pinned_ ||
                (!config_.reference_mode && engine_->fast_prefilled() &&
                 engine_->fast_params_match(config_.threshold,
                                            config_.p_safe)));
  init_expected_clients();
}

void OnlineSequencer::init_expected_clients() {
  ref_generation_ = registry_.generation();
  TOMMY_EXPECTS(config_.threshold > 0.5 && config_.threshold < 1.0);
  TOMMY_EXPECTS(config_.p_safe > 0.5 && config_.p_safe < 1.0);
  TOMMY_EXPECTS(!expected_clients_.empty());
  clients_.reserve(expected_clients_.size());
  slot_by_cindex_.assign(registry_.size(), kNoSlot);
  for (ClientId c : expected_clients_) {
    TOMMY_EXPECTS(registry_.contains(c));
    const std::uint32_t cindex = registry_.index_of(c);
    if (slot_by_cindex_[cindex] != kNoSlot) {
      continue;  // duplicate expected client: one gate entry
    }
    slot_by_cindex_[cindex] = static_cast<std::uint32_t>(clients_.size());
    ClientState state;
    state.id = c;
    state.cindex = cindex;
    clients_.push_back(state);
  }
  if (!config_.reference_mode) {
    engine_->prime(config_.threshold, config_.p_safe);
  }
  unheard_count_ = clients_.size();
  heap_.reserve(clients_.size());
  heap_pos_.assign(clients_.size(), kNotInHeap);
  session_table_.reserve(clients_.size());
  for (const ClientState& state : clients_) {
    Session session;
    session.sequencer_ = this;
    session.client_ = state.id;
    session.cindex_ = state.cindex;
    session.slot_ = slot_by_cindex_[state.cindex];
    refresh_session(session);
    session_table_.push_back(session);
  }
}

void OnlineSequencer::register_client(ClientId client) {
  TOMMY_EXPECTS(registry_.contains(client));
  const std::uint32_t cindex = registry_.index_of(client);
  if (cindex >= slot_by_cindex_.size()) {
    slot_by_cindex_.resize(registry_.size(), kNoSlot);
  }
  if (slot_by_cindex_[cindex] != kNoSlot) return;  // already expected
  const auto slot = static_cast<std::uint32_t>(clients_.size());
  slot_by_cindex_[cindex] = slot;
  expected_clients_.push_back(client);
  ClientState state;
  state.id = client;
  state.cindex = cindex;
  clients_.push_back(state);
  ++unheard_count_;
  heap_pos_.push_back(kNotInHeap);
  Session session;
  session.sequencer_ = this;
  session.client_ = client;
  session.cindex_ = cindex;
  session.slot_ = slot;
  refresh_session(session);
  session_table_.push_back(session);
}

std::uint64_t OnlineSequencer::current_generation() const {
  return pinned_ ? engine_->fast_generation() : registry_.generation();
}

std::uint32_t OnlineSequencer::slot_of(ClientId client) const {
  // Unknown-to-the-registry clients die inside index_of; clients the
  // registry knows but this sequencer does not expect die here. Both are
  // configuration errors.
  const std::uint32_t cindex = registry_.index_of(client);
  TOMMY_EXPECTS(cindex < slot_by_cindex_.size() &&
                slot_by_cindex_[cindex] != kNoSlot);
  return slot_by_cindex_[cindex];
}

void OnlineSequencer::refresh_session(Session& session) const {
  session.generation_ = current_generation();
  if (config_.reference_mode) return;  // no cached constants to refresh
  session.mean_offset_ = engine_->fast_mean(session.cindex_);
  session.safe_offset_ = engine_->fast_safe_offset(session.cindex_);
}

OnlineSequencer::Session OnlineSequencer::open_session(ClientId client) {
  maybe_reprime();  // a fresh handle starts from current tables
  Session session = session_table_[slot_of(client)];
  if (session.generation_ != current_generation()) {
    refresh_session(session);
  }
  return session;
}

void OnlineSequencer::Session::submit(TimePoint stamp, MessageId id,
                                      TimePoint now) {
  TOMMY_EXPECTS(sequencer_ != nullptr);
  sequencer_->session_submit(*this, stamp, id, now, /*relaxed=*/false);
}

void OnlineSequencer::Session::submit_relaxed(TimePoint stamp, MessageId id,
                                              TimePoint now) {
  TOMMY_EXPECTS(sequencer_ != nullptr);
  sequencer_->session_submit(*this, stamp, id, now, /*relaxed=*/true);
}

void OnlineSequencer::Session::submit_batch(
    std::span<const Submission> items) {
  TOMMY_EXPECTS(sequencer_ != nullptr);
  sequencer_->session_submit_batch(*this, items, /*relaxed=*/false);
}

void OnlineSequencer::Session::submit_batch_relaxed(
    std::span<const Submission> items) {
  TOMMY_EXPECTS(sequencer_ != nullptr);
  sequencer_->session_submit_batch(*this, items, /*relaxed=*/true);
}

void OnlineSequencer::Session::heartbeat(TimePoint local_stamp,
                                         TimePoint now) {
  TOMMY_EXPECTS(sequencer_ != nullptr);
  sequencer_->session_heartbeat(*this, local_stamp, now);
}

void OnlineSequencer::touch_client(ClientState& state) {
  state.departed = false;  // hearing from a retired client revives it
  if (!state.heard) {
    state.heard = true;
    TOMMY_ASSERT(unheard_count_ > 0);
    --unheard_count_;
  }
  if (config_.reference_mode) return;
  const TimePoint frontier =
      engine_->fast_completeness_frontier(state.cindex, state.high_water);
  const auto slot = static_cast<std::uint32_t>(&state - clients_.data());
  if (heap_pos_[slot] == kNotInHeap) {
    // First word from this client, or its re-entry into the gate after a
    // silence-timeout removal.
    state.frontier = frontier;
    heap_insert(slot);
  } else if (frontier > state.frontier) {
    // High water advanced: the frontier only grows, so the node can only
    // move away from the root.
    state.frontier = frontier;
    heap_sift_down(heap_pos_[slot]);
  }
}

void OnlineSequencer::session_submit(Session& session, TimePoint stamp,
                                     MessageId id, TimePoint now,
                                     bool relaxed) {
  maybe_reprime();
  if (!relaxed) {
    TOMMY_EXPECTS(now >= last_arrival_);  // FIFO delivery contract
  }
  last_arrival_ = std::max(last_arrival_, now);
  if (!config_.reference_mode &&
      session.generation_ != current_generation()) {
    refresh_session(session);
  }

  ClientState& state = clients_[session.slot_];
  state.high_water = std::max(state.high_water, stamp);
  state.last_heard = std::max(state.last_heard, now);
  touch_client(state);

  Buffered entry;
  entry.msg = Message{id, session.client_, stamp, now};
  entry.cindex = session.cindex_;
  if (config_.reference_mode) {
    entry.corrected = engine_->corrected_stamp(entry.msg).seconds();
    entry.safe_time = engine_->safe_emission_time(entry.msg, config_.p_safe);
  } else {
    // Same arithmetic as the engine's fast_corrected /
    // fast_safe_emission_time, from the session's cached offsets.
    entry.corrected = stamp.seconds() + session.mean_offset_;
    entry.safe_time = stamp + Duration(session.safe_offset_);
  }
  ingest(std::move(entry));
}

void OnlineSequencer::session_submit_batch(Session& session,
                                           std::span<const Submission> items,
                                           bool relaxed) {
  if (items.empty()) return;
  maybe_reprime();
  if (!config_.reference_mode &&
      session.generation_ != current_generation()) {
    refresh_session(session);
  }

  ClientState& state = clients_[session.slot_];
  for (const Submission& item : items) {
    if (!relaxed) {
      TOMMY_EXPECTS(item.arrival >= last_arrival_);  // FIFO contract
    }
    last_arrival_ = std::max(last_arrival_, item.arrival);
    state.high_water = std::max(state.high_water, item.stamp);
    state.last_heard = std::max(state.last_heard, item.arrival);

    Buffered entry;
    entry.msg = Message{item.id, session.client_, item.stamp, item.arrival};
    entry.cindex = session.cindex_;
    if (config_.reference_mode) {
      entry.corrected = engine_->corrected_stamp(entry.msg).seconds();
      entry.safe_time = engine_->safe_emission_time(entry.msg, config_.p_safe);
    } else {
      entry.corrected = item.stamp.seconds() + session.mean_offset_;
      entry.safe_time = item.stamp + Duration(session.safe_offset_);
    }
    ingest(std::move(entry));
  }
  // One completeness-state fix-up for the whole batch: gate checks only
  // run at polls, so the intermediate per-item states are unobservable.
  touch_client(state);
}

void OnlineSequencer::session_heartbeat(Session& session,
                                        TimePoint local_stamp, TimePoint now) {
  maybe_reprime();
  ClientState& state = clients_[session.slot_];
  state.high_water = std::max(state.high_water, local_stamp);
  state.last_heard = std::max(state.last_heard, now);
  touch_client(state);
}

void OnlineSequencer::on_message(const Message& m) {
  // Thin wrapper: route through the internal session table (one hash).
  session_submit(session_table_[slot_of(m.client)], m.stamp, m.id, m.arrival,
                 /*relaxed=*/false);
}

void OnlineSequencer::on_heartbeat(ClientId c, TimePoint local_stamp,
                                   TimePoint now) {
  session_heartbeat(session_table_[slot_of(c)], local_stamp, now);
}

void OnlineSequencer::refresh_entry(Buffered& entry) const {
  entry.cindex = registry_.index_of(entry.msg.client);
  if (config_.reference_mode) {
    entry.corrected = engine_->corrected_stamp(entry.msg).seconds();
    entry.safe_time = engine_->safe_emission_time(entry.msg, config_.p_safe);
  } else {
    entry.corrected = engine_->fast_corrected(entry.cindex, entry.msg.stamp);
    entry.safe_time =
        engine_->fast_safe_emission_time(entry.cindex, entry.msg.stamp);
  }
}

void OnlineSequencer::maybe_reprime() {
  if (config_.reference_mode) {
    // Mirror of the fast path's refresh boundary: a registry re-announce
    // re-keys every buffered entry, so restore (corrected, id) order
    // before any insert or closure computation reads the buffer. Both
    // modes therefore re-sort at the first entry-point call after an
    // announce and stay bit-identical across it.
    if (registry_.generation() != ref_generation_) resort_reference_buffer();
    return;
  }
  if (pinned_) return;  // epoch-pinned: announces wait for rebind_engine
  if (engine_->fast_ready(config_.threshold, config_.p_safe)) return;
  engine_->prime(config_.threshold, config_.p_safe);
  refresh_epoch_state();
}

void OnlineSequencer::refresh_epoch_state() {
  // Distributions changed under us: refresh every cached constant and
  // rebuild the buffer in (corrected, id) order under the fresh keys —
  // one O(n log n) sort at the announce boundary buys back the sorted
  // invariant every windowed early exit depends on (the former
  // leave-it-unsorted behaviour disabled those exits for the rest of the
  // epoch). Sessions refresh themselves lazily off the generation
  // counter.
  std::vector<Buffered> entries = fast_buffer_.extract_all();
  for (Buffered& entry : entries) refresh_entry(entry);
  std::sort(entries.begin(), entries.end(), BufferedLess{});
  fast_buffer_.assign_sorted(std::move(entries));
  for (Buffered& entry : last_emitted_) refresh_entry(entry);
  // The frontier offsets moved too: recompute every heard client's cached
  // frontier and rebuild the gate heap over all heard clients (clients
  // previously dropped by the silence timeout re-enter here; the next
  // gate check re-drops whoever is still silent).
  for (ClientState& state : clients_) {
    if (!state.heard) continue;
    state.frontier =
        engine_->fast_completeness_frontier(state.cindex, state.high_water);
  }
  heap_rebuild();
  head_valid_ = false;
}

void OnlineSequencer::resort_reference_buffer() {
  ref_generation_ = registry_.generation();
  // The naive comparator, applied to the whole buffer: both modes sort
  // unique (corrected stamp, id) keys with std::sort, and the equivalence
  // tests prove corrected_stamp == the fast path's cached key bitwise, so
  // the resulting permutations are identical.
  std::sort(buffer_.begin(), buffer_.end(),
            [this](const Buffered& lhs, const Buffered& rhs) {
              const TimePoint lk = engine_->corrected_stamp(lhs.msg);
              const TimePoint rk = engine_->corrected_stamp(rhs.msg);
              if (lk != rk) return lk < rk;
              return lhs.msg.id < rhs.msg.id;
            });
}

void OnlineSequencer::rebind_engine(
    std::shared_ptr<const PrecedingEngine> engine,
    std::span<const ClientId> new_clients) {
  TOMMY_EXPECTS(engine != nullptr);
  TOMMY_EXPECTS(&engine->registry() == &registry_);
  if (!config_.reference_mode) {
    // The new epoch must be a finished table set for our parameters; in
    // pinned mode it must additionally be prefilled (workers read it
    // lock-free).
    TOMMY_EXPECTS(engine->fast_primed() &&
                  engine->fast_params_match(config_.threshold,
                                            config_.p_safe));
    TOMMY_EXPECTS(!pinned_ || engine->fast_prefilled());
  }
  engine_ptr_ = std::move(engine);
  engine_ = engine_ptr_.get();
  for (ClientId client : new_clients) register_client(client);
  if (config_.reference_mode) {
    // Per-query evaluation leaves no cached constants, but the buffer's
    // stored order is still a cache of the old keys — restore it.
    resort_reference_buffer();
    return;
  }
  refresh_epoch_state();
}

void OnlineSequencer::retire_client(ClientId client) {
  ClientState& state = clients_[slot_of(client)];
  if (state.departed) return;
  state.departed = true;
  if (!state.heard) {
    // A client that departs without ever speaking stops gating Q2 the
    // same way a heard-then-departed one does.
    state.heard = true;
    TOMMY_ASSERT(unheard_count_ > 0);
    --unheard_count_;
    return;  // never touched, so never in the heap
  }
  if (!config_.reference_mode) {
    const std::uint32_t slot = slot_of(client);
    if (heap_pos_[slot] != kNotInHeap) heap_remove_at(heap_pos_[slot]);
  }
}

bool OnlineSequencer::is_departed(ClientId client) const {
  return clients_[slot_of(client)].departed;
}

bool OnlineSequencer::confidently_after(const Message& later,
                                        const Message& earlier) const {
  return engine_->preceding_probability(earlier, later) > config_.threshold;
}

void OnlineSequencer::ingest(Buffered entry) {
  // Fairness-violation check: did this message confidently belong at or
  // before a rank we already emitted? (The safe-emission machinery makes
  // this rare — with frequency controlled by p_safe.)
  if (config_.reference_mode) {
    for (const Buffered& emitted : last_emitted_) {
      if (!confidently_after(entry.msg, emitted.msg)) {
        ++fairness_violations_;
        break;
      }
    }
    // The naive comparator: recomputes both sides' corrected stamps per
    // comparison, exactly as the original implementation did.
    const auto pos = std::lower_bound(
        buffer_.begin(), buffer_.end(), entry,
        [this](const Buffered& lhs, const Buffered& rhs) {
          const TimePoint lk = engine_->corrected_stamp(lhs.msg);
          const TimePoint rk = engine_->corrected_stamp(rhs.msg);
          if (lk != rk) return lk < rk;
          return lhs.msg.id < rhs.msg.id;
        });
    buffer_.insert(pos, std::move(entry));
    return;
  }
  for (const Buffered& emitted : last_emitted_) {
    const double diff = entry.corrected - emitted.corrected;
    if (!(diff > engine_->fast_critical_gap(emitted.cindex, entry.cindex))) {
      ++fairness_violations_;
      break;
    }
  }
  insert_fast(std::move(entry));
}

void OnlineSequencer::insert_fast(Buffered entry) {
  if (head_valid_) {
    const bool inside_head =
        entry.corrected < head_last_corrected_ ||
        (entry.corrected == head_last_corrected_ &&
         entry.msg.id <= head_last_id_);
    if (inside_head) {
      // Lands at or before the last head row: positions (and possibly
      // the cut) moved.
      head_valid_ = false;
    } else {
      // Beyond the head. Inserts can only add uncertain pairs, never
      // remove them, so earlier (blocked) cuts stay blocked and the cut at
      // head_size_ survives iff the new entry is confidently after every
      // head row. Check exactly, nearest row first; once the gap exceeds
      // the global maximum critical gap no farther row can be uncertain.
      auto it = fast_buffer_.iterator_at(head_size_);
      const auto begin = fast_buffer_.begin();
      while (it != begin) {
        --it;
        const double diff = entry.corrected - it->corrected;
        if (diff > engine_->fast_global_max_gap()) break;
        if (!(diff > engine_->fast_critical_gap(it->cindex, entry.cindex))) {
          head_valid_ = false;
          break;
        }
      }
    }
  }
  fast_buffer_.insert(std::move(entry));
}

void OnlineSequencer::recompute_head() const {
  TOMMY_ASSERT(!fast_buffer_.empty());
  // Closure rule (see BatchRule::kClosure): the head batch ends at the
  // first position e such that no uncertain pair (i < e <= j) crosses it.
  // "reach" tracks the furthest uncertain partner of any absorbed row; any
  // candidate boundary at or before reach is blocked, so we jump past it.
  // A row's uncertain partners all lie within its maximum critical gap
  // (diff > Ḡ_i ⟹ diff > g*_{ij} ∀j), so each row's scan stops at its
  // uncertainty window instead of running to the end of the buffer (the
  // buffer is always sorted by corrected stamp: epoch refreshes rebuild
  // it in order). The walk is purely sequential — absorbed advances one
  // row at a time and each inner scan starts just past it — so
  // bidirectional iterators suffice; indices are tracked only for the
  // reach/cut arithmetic.
  const std::size_t n = fast_buffer_.size();
  std::size_t reach = 0;
  std::size_t absorbed = 0;
  std::size_t e = 1;
  TimePoint safe(-std::numeric_limits<double>::infinity());
  auto row_it = fast_buffer_.begin();
  while (true) {
    for (; absorbed < e; ++absorbed, ++row_it) {
      const Buffered& row = *row_it;
      safe = std::max(safe, row.safe_time);
      // The loop exits with absorbed == e, so the last row written here
      // is the head's final row — exactly the key insert_fast compares
      // against.
      head_last_corrected_ = row.corrected;
      head_last_id_ = row.msg.id;
      const double window = engine_->fast_max_gap_from(row.cindex);
      auto jt = row_it;
      ++jt;
      for (std::size_t j = absorbed + 1; j < n; ++j, ++jt) {
        const double diff = jt->corrected - row.corrected;
        if (diff > window) break;
        if (!(diff > engine_->fast_critical_gap(row.cindex, jt->cindex))) {
          reach = std::max(reach, j);
        }
      }
    }
    if (reach < e) break;  // clean cut: head batch is the first e rows
    e = reach + 1;
  }
  head_size_ = e;
  head_safe_ = safe;
  head_valid_ = true;
}

std::size_t OnlineSequencer::head_batch_size_naive() const {
  TOMMY_ASSERT(!buffer_.empty());
  const std::size_t n = buffer_.size();
  std::size_t reach = 0;
  std::size_t absorbed = 0;
  std::size_t e = 1;
  while (e < n) {
    for (; absorbed < e; ++absorbed) {
      for (std::size_t j = absorbed + 1; j < n; ++j) {
        if (!confidently_after(buffer_[j].msg, buffer_[absorbed].msg)) {
          reach = std::max(reach, j);
        }
      }
    }
    if (reach < e) return e;  // clean cut: head batch is buffer_[0..e)
    e = reach + 1;
  }
  return n;
}

TimePoint OnlineSequencer::safe_time_for_naive(std::size_t batch_size) const {
  TimePoint t_b = TimePoint(-std::numeric_limits<double>::infinity());
  for (std::size_t k = 0; k < batch_size; ++k) {
    t_b = std::max(t_b,
                   engine_->safe_emission_time(buffer_[k].msg, config_.p_safe));
  }
  return t_b;
}

// ── Completeness min-frontier heap ──────────────────────────────────────
//
// The gate question "does every gate-active client's frontier clear T_b"
// is a minimum query: min over active clients of (hw_c + Q_c(1 − p_safe))
// >= T_b. The heap keeps that minimum at the root so an emission attempt
// costs O(1) instead of a scan over every expected client; frontier
// advances are O(log n) sift-downs (the frontier is monotone per client
// between re-primes).
//
// The silence timeout is the subtle part: exclusion from the gate is a
// function of the query's `now`, not of any ingest event. Timed-out roots
// are REMOVED during the check and re-inserted by the client's next
// message/heartbeat (touch_client). That removal is only sound while gate
// queries move forward in time — a client silent at `now` is silent at
// every later `now` until it speaks again, and speaking re-inserts it.
// Queries that travel backwards (nothing forbids poll(5) after poll(7))
// take the exact O(n) scan over the cached frontiers instead, so the heap
// never serves a query its removals could have corrupted.

void OnlineSequencer::heap_sift_up(std::size_t pos) const {
  const std::uint32_t slot = heap_[pos];
  const TimePoint key = clients_[slot].frontier;
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (clients_[heap_[parent]].frontier <= key) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos]] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<std::uint32_t>(pos);
}

void OnlineSequencer::heap_sift_down(std::size_t pos) const {
  const std::size_t n = heap_.size();
  const std::uint32_t slot = heap_[pos];
  const TimePoint key = clients_[slot].frontier;
  while (true) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        clients_[heap_[child + 1]].frontier < clients_[heap_[child]].frontier) {
      ++child;
    }
    if (key <= clients_[heap_[child]].frontier) break;
    heap_[pos] = heap_[child];
    heap_pos_[heap_[pos]] = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<std::uint32_t>(pos);
}

void OnlineSequencer::heap_insert(std::uint32_t slot) const {
  TOMMY_ASSERT(heap_pos_[slot] == kNotInHeap);
  heap_.push_back(slot);
  heap_sift_up(heap_.size() - 1);
}

void OnlineSequencer::heap_remove_top() const {
  TOMMY_ASSERT(!heap_.empty());
  heap_pos_[heap_.front()] = kNotInHeap;
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    heap_pos_[last] = 0;
    heap_sift_down(0);
  }
}

void OnlineSequencer::heap_remove_at(std::size_t pos) const {
  TOMMY_ASSERT(pos < heap_.size());
  heap_pos_[heap_[pos]] = kNotInHeap;
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail node
  heap_[pos] = last;
  heap_pos_[last] = static_cast<std::uint32_t>(pos);
  // The moved node may violate either direction; only one sift acts.
  heap_sift_down(pos);
  heap_sift_up(heap_pos_[last]);
}

void OnlineSequencer::heap_rebuild() const {
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), kNotInHeap);
  for (std::uint32_t slot = 0; slot < clients_.size(); ++slot) {
    if (!clients_[slot].heard || clients_[slot].departed) continue;
    heap_.push_back(slot);
    heap_pos_[slot] = static_cast<std::uint32_t>(heap_.size() - 1);
  }
  for (std::size_t pos = heap_.size() / 2; pos-- > 0;) heap_sift_down(pos);
}

bool OnlineSequencer::completeness_scan(TimePoint t_b, TimePoint now) const {
  // Reference semantics over the cached fast-mode frontiers.
  for (const ClientState& state : clients_) {
    if (state.departed) continue;  // explicit departure: out of the gate
    const bool timed_out =
        config_.client_silence_timeout.is_finite() &&
        (!state.heard ||
         now - state.last_heard > config_.client_silence_timeout);
    if (timed_out) continue;  // liveness guard: drop from the gate
    if (!state.heard) return false;
    if (state.frontier < t_b) return false;
  }
  return true;
}

bool OnlineSequencer::completeness_satisfied(TimePoint t_b,
                                             TimePoint now) const {
  const bool finite_timeout = config_.client_silence_timeout.is_finite();
  if (!finite_timeout && unheard_count_ > 0) return false;
  if (now < last_gate_now_) return completeness_scan(t_b, now);
  last_gate_now_ = now;
  while (!heap_.empty()) {
    const ClientState& state = clients_[heap_.front()];
    if (finite_timeout &&
        now - state.last_heard > config_.client_silence_timeout) {
      heap_remove_top();  // silent: drop from the gate until it speaks
      continue;
    }
    return state.frontier >= t_b;  // the root IS the minimum frontier
  }
  // Every heard client is currently dropped by the timeout (and, with a
  // finite timeout, unheard clients never gate): nothing blocks.
  return true;
}

bool OnlineSequencer::completeness_satisfied_naive(TimePoint t_b,
                                                   TimePoint now) const {
  for (const ClientState& state : clients_) {
    if (state.departed) continue;  // explicit departure: out of the gate
    const bool timed_out =
        config_.client_silence_timeout.is_finite() &&
        (!state.heard ||
         now - state.last_heard > config_.client_silence_timeout);
    if (timed_out) continue;  // liveness guard: drop from the gate
    if (!state.heard) return false;
    const TimePoint frontier =
        engine_->completeness_frontier(state.id, state.high_water,
                                      config_.p_safe);
    if (frontier < t_b) return false;
  }
  return true;
}

EmissionRecord OnlineSequencer::take_head(std::size_t size, TimePoint t_b,
                                          TimePoint now) {
  EmissionRecord record;
  record.batch.rank = next_rank_++;
  record.batch.messages.reserve(size);
  last_emitted_.clear();
  last_emitted_.reserve(size);
  if (config_.reference_mode) {
    for (std::size_t k = 0; k < size; ++k) {
      record.batch.messages.push_back(buffer_[k].msg);
      last_emitted_.push_back(buffer_[k]);
    }
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(size));
  } else {
    auto it = fast_buffer_.begin();
    for (std::size_t k = 0; k < size; ++k, ++it) {
      record.batch.messages.push_back(it->msg);
      last_emitted_.push_back(*it);
    }
    fast_buffer_.pop_front(size);
  }
  record.emitted_at = now;
  record.safe_time = t_b;
  head_valid_ = false;
  return record;
}

std::size_t OnlineSequencer::drain(TimePoint now, bool ignore_gates,
                                   EmissionSink& sink,
                                   std::uint32_t shard_tag) {
  std::size_t emitted = 0;
  while (pending_count() > 0) {
    std::size_t size;
    TimePoint t_b;
    if (config_.reference_mode) {
      size = head_batch_size_naive();
      t_b = safe_time_for_naive(size);
    } else {
      if (!head_valid_) recompute_head();
      size = head_size_;
      t_b = head_safe_;
    }
    if (!ignore_gates) {
      if (now < t_b) break;
      const bool complete = config_.reference_mode
                                ? completeness_satisfied_naive(t_b, now)
                                : completeness_satisfied(t_b, now);
      if (!complete) break;
    }
    sink.on_emission(take_head(size, t_b, now), shard_tag);
    ++emitted;
  }
  return emitted;
}

std::vector<EmissionRecord> OnlineSequencer::poll(TimePoint now) {
  std::vector<EmissionRecord> out;
  VectorSink sink(out);
  maybe_reprime();
  drain(now, /*ignore_gates=*/false, sink, 0);
  return out;
}

std::size_t OnlineSequencer::poll(TimePoint now, EmissionSink& sink,
                                  std::uint32_t shard_tag) {
  maybe_reprime();
  return drain(now, /*ignore_gates=*/false, sink, shard_tag);
}

std::vector<EmissionRecord> OnlineSequencer::flush(TimePoint now) {
  std::vector<EmissionRecord> out;
  VectorSink sink(out);
  maybe_reprime();
  drain(now, /*ignore_gates=*/true, sink, 0);
  return out;
}

std::size_t OnlineSequencer::flush(TimePoint now, EmissionSink& sink,
                                   std::uint32_t shard_tag) {
  maybe_reprime();
  return drain(now, /*ignore_gates=*/true, sink, shard_tag);
}

TimePoint OnlineSequencer::next_safe_time() const {
  if (pending_count() == 0) return TimePoint::infinite_future();
  if (config_.reference_mode) {
    return safe_time_for_naive(head_batch_size_naive());
  }
  if (!head_valid_) recompute_head();
  return head_safe_;
}

std::vector<ClientId> OnlineSequencer::timed_out_clients(TimePoint now) const {
  std::vector<ClientId> out;
  if (!config_.client_silence_timeout.is_finite()) return out;
  for (const ClientState& state : clients_) {
    if (state.departed) continue;  // departed, not timed out
    if (!state.heard ||
        now - state.last_heard > config_.client_silence_timeout) {
      out.push_back(state.id);
    }
  }
  return out;
}

}  // namespace tommy::core
