#include "core/tie_breaker.hpp"

#include "common/check.hpp"

namespace tommy::core {

FairTieBreaker::FairTieBreaker(std::uint64_t seed) : rng_(seed) {}

std::vector<Message> FairTieBreaker::total_order(const Batch& batch) {
  TOMMY_EXPECTS(!batch.messages.empty());
  std::vector<Message> shuffled = batch.messages;
  rng_.shuffle(shuffled);

  if (shuffled.size() > 1) {
    std::vector<ClientId> participants;
    participants.reserve(shuffled.size());
    for (const Message& m : shuffled) participants.push_back(m.client);
    ledger_.record(shuffled.front().client, participants);
  }
  return shuffled;
}

std::vector<Message> FairTieBreaker::total_order(
    const SequencerResult& result) {
  std::vector<Message> out;
  out.reserve(result.message_count());
  for (const Batch& batch : result.batches) {
    std::vector<Message> ordered = total_order(batch);
    out.insert(out.end(), ordered.begin(), ordered.end());
  }
  return out;
}

}  // namespace tommy::core
