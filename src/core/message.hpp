// Domain types of the sequencing problem: a timestamped message as the
// sequencer sees it, and a rank-ordered batch as the sequencer emits it
// (§3: "All messages within a batch B_i will have a rank i").
#pragma once

#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace tommy::core {

struct Message {
  MessageId id;
  ClientId client;
  /// T_i — the client's local clock at generation. The only timestamp the
  /// statistical model uses.
  TimePoint stamp;
  /// Sequencer receive time (its own clock). Used by the FIFO baseline and
  /// the online sequencer; ignored by offline Tommy.
  TimePoint arrival{TimePoint::epoch()};

  friend bool operator==(const Message&, const Message&) = default;
};

struct Batch {
  Rank rank{0};
  std::vector<Message> messages;
};

/// A complete sequencing decision: batches in rank order (dense ranks from
/// 0). Within a batch messages are unordered (partial order, §3.4).
struct SequencerResult {
  std::vector<Batch> batches;

  [[nodiscard]] std::size_t message_count() const {
    std::size_t n = 0;
    for (const Batch& b : batches) n += b.messages.size();
    return n;
  }

  [[nodiscard]] std::vector<std::size_t> batch_sizes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(batches.size());
    for (const Batch& b : batches) sizes.push_back(b.messages.size());
    return sizes;
  }
};

}  // namespace tommy::core
