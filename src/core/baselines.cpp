#include "core/baselines.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::core {

namespace {

/// Sorts by `key` and assigns singleton batches in that order.
template <typename KeyFn>
SequencerResult singleton_batches_by(std::vector<Message> messages,
                                     KeyFn key) {
  std::sort(messages.begin(), messages.end(),
            [&key](const Message& a, const Message& b) {
              const auto ka = key(a);
              const auto kb = key(b);
              if (ka != kb) return ka < kb;
              return a.id < b.id;
            });
  SequencerResult result;
  result.batches.reserve(messages.size());
  for (std::size_t k = 0; k < messages.size(); ++k) {
    Batch batch;
    batch.rank = k;
    batch.messages.push_back(messages[k]);
    result.batches.push_back(std::move(batch));
  }
  return result;
}

}  // namespace

TrueTimeSequencer::TrueTimeSequencer(const ClientRegistry& registry,
                                     TrueTimeConfig config)
    : registry_(registry), config_(config) {
  TOMMY_EXPECTS(config.k_sigma > 0.0);
}

SequencerResult TrueTimeSequencer::sequence(std::vector<Message> messages) {
  if (messages.empty()) return {};

  struct Interval {
    double lo;
    double hi;
    Message message;
  };
  std::vector<Interval> intervals;
  intervals.reserve(messages.size());
  for (Message& m : messages) {
    const stats::Distribution& d = registry_.offset_distribution(m.client);
    const double center =
        m.stamp.seconds() + (config_.mean_correct ? d.mean() : 0.0);
    const double half = config_.k_sigma * d.stddev();
    intervals.push_back({center - half, center + half, std::move(m)});
  }

  // Overlap components via a single sweep: sort by interval start; a new
  // batch begins when the next interval starts past everything seen so far.
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.message.id < b.message.id;
            });

  SequencerResult result;
  Batch current;
  current.rank = 0;
  double reach = -std::numeric_limits<double>::infinity();
  for (Interval& iv : intervals) {
    if (!current.messages.empty() && iv.lo > reach) {
      result.batches.push_back(std::move(current));
      current = Batch{};
      current.rank = result.batches.size();
    }
    reach = std::max(reach, iv.hi);
    current.messages.push_back(std::move(iv.message));
  }
  result.batches.push_back(std::move(current));
  return result;
}

SequencerResult WfoSequencer::sequence(std::vector<Message> messages) {
  return singleton_batches_by(std::move(messages),
                              [](const Message& m) { return m.stamp; });
}

SequencerResult FifoSequencer::sequence(std::vector<Message> messages) {
  return singleton_batches_by(std::move(messages),
                              [](const Message& m) { return m.arrival; });
}

}  // namespace tommy::core
