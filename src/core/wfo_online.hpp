// Streaming WaitsForOne sequencer — Figure 2 / §1's "approximate
// solution", as it would actually run: the sequencer holds one FIFO queue
// per client and releases the globally-smallest head timestamp once it
// knows no client can still produce anything smaller — i.e. every other
// client either has a queued message or has advanced its local clock past
// the candidate (message or heartbeat with a larger stamp, over in-order
// channels).
//
// This is fair exactly when clock errors are negligible relative to
// inter-message gaps (the paper's point): it trusts raw local stamps.
// With noisy clocks a client's stamps may regress between consecutive
// messages; WFO's in-order assumption is then violated — such arrivals
// are counted in monotonicity_violations() and released on arrival-order
// within the client's queue.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/message.hpp"

namespace tommy::core {

class WfoOnlineSequencer {
 public:
  /// The fixed, known client set (the same §3.5 assumption Tommy's
  /// completeness gate uses).
  explicit WfoOnlineSequencer(std::vector<ClientId> expected_clients);

  /// Ingests a message (per-client arrival order = channel order).
  void on_message(const Message& m);

  /// Ingests a heartbeat carrying the client's current local stamp.
  void on_heartbeat(ClientId client, TimePoint local_stamp);

  /// Releases every message whose release condition holds, smallest stamp
  /// first. Each released message is its own rank (WFO emits a total
  /// order).
  [[nodiscard]] std::vector<Batch> poll();

  [[nodiscard]] std::size_t pending_count() const;
  [[nodiscard]] Rank next_rank() const { return next_rank_; }

  /// Messages that arrived stamped before their client's high-water mark
  /// (local clock regressed): the in-order-stamps assumption broke.
  [[nodiscard]] std::size_t monotonicity_violations() const {
    return monotonicity_violations_;
  }

 private:
  struct ClientState {
    std::deque<Message> queue;
    TimePoint high_water{
        TimePoint(-std::numeric_limits<double>::infinity())};
  };

  /// True iff no client can still produce a message stamped below `stamp`.
  [[nodiscard]] bool releasable(TimePoint stamp) const;

  std::unordered_map<ClientId, ClientState> clients_;
  std::vector<ClientId> expected_clients_;
  Rank next_rank_{0};
  std::size_t monotonicity_violations_{0};
};

}  // namespace tommy::core
