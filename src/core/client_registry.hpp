// The sequencer's knowledge of client clock-offset distributions
// (Figure 1's "Learned Clock Offset Distributions" box). Clients announce
// a DistributionSummary once (or re-announce to update); the registry
// materializes and caches the Distribution objects the engines query.
//
// Every client additionally gets a small dense index (0, 1, 2, ...) that
// is stable across re-announcements. Hot-path engines use these indices
// to key flat arrays (per-client constants, per-pair critical gaps)
// instead of hashing ClientIds per query. `generation()` increments on
// every announce so engines can detect stale derived tables.
//
// Thread safety: all members are safe to call concurrently. Announces
// take an exclusive lock; lookups take a shared lock. The reference-
// returning accessors (`offset_distribution`, `distribution_at`) hand
// out references that stay valid only until the next replacing announce
// for that client — callers that may race with announces (the reconfig
// primer, live engines) must use the `shared_ptr`-returning variants,
// which keep the distribution alive across a replacement.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"

namespace tommy::core {

class ClientRegistry {
 public:
  using SharedDistribution = std::shared_ptr<const stats::Distribution>;

  ClientRegistry() = default;
  // Moves are NOT concurrency-safe (the lock does not move with the
  // object); they exist so factory helpers can return by value before
  // any threads share the registry.
  ClientRegistry(ClientRegistry&& other) noexcept;
  ClientRegistry& operator=(ClientRegistry&& other) noexcept;

  /// Registers (or replaces) a client's offset distribution. Idempotent:
  /// re-announcing a summary whose wire form matches the one on record
  /// changes nothing and does NOT bump the generation (so connection
  /// handshakes that re-send a known distribution don't invalidate the
  /// engines' derived tables). Returns whether the registry changed.
  bool announce(ClientId client, const stats::DistributionSummary& summary);

  /// Registers a distribution object directly (simulation convenience —
  /// §4 seeds clients with their true distributions this way). Always
  /// replaces (no wire form to compare); returns true.
  bool announce(ClientId client, stats::DistributionPtr distribution);

  [[nodiscard]] bool contains(ClientId client) const;

  /// Offset distribution f_θ for `client`. Precondition: contains(client).
  /// The reference is valid until the next replacing announce for this
  /// client; use offset_distribution_ptr when announces may race.
  [[nodiscard]] const stats::Distribution& offset_distribution(
      ClientId client) const;

  /// Shared-ownership handle to f_θ for `client`: stays valid across a
  /// concurrent re-announce. Precondition: contains(client).
  [[nodiscard]] SharedDistribution offset_distribution_ptr(
      ClientId client) const;

  /// Dense index of `client` in [0, size()), assigned at first announce
  /// and stable across re-announcements. Precondition: contains(client).
  [[nodiscard]] std::uint32_t index_of(ClientId client) const;

  /// Inverse of index_of. Precondition: index < size().
  [[nodiscard]] ClientId client_at(std::uint32_t index) const;

  /// Distribution by dense index. Precondition: index < size(). Same
  /// lifetime caveat as offset_distribution.
  [[nodiscard]] const stats::Distribution& distribution_at(
      std::uint32_t index) const;

  /// Shared-ownership handle by dense index. Precondition: index < size().
  [[nodiscard]] SharedDistribution distribution_ptr_at(
      std::uint32_t index) const;

  /// Serialized wire form of the summary `client` last announced (a
  /// copy — safe across concurrent re-announces), or nullopt when the
  /// client was registered directly with a Distribution object (no
  /// comparable wire form). Lets a wire front-end decide whether an
  /// inbound announcement is a no-op re-send or a real change.
  /// Precondition: contains(client).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> announced_summary(
      ClientId client) const;

  /// Bumped on every announce that changed the registry (new client or
  /// replacement; identical summary re-announces don't count); lets
  /// engines invalidate tables derived from the distributions.
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// True iff every registered distribution is exactly Gaussian — enables
  /// the closed-form engine and the transitivity guarantee of Appendix A.
  [[nodiscard]] bool all_gaussian() const;

  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::vector<ClientId> clients() const;

 private:
  struct Entry {
    ClientId client;
    SharedDistribution distribution;
    /// Wire form of the announcing summary; empty for direct
    /// Distribution announces.
    std::vector<std::uint8_t> summary_bytes;
  };

  bool announce_locked(ClientId client, stats::DistributionPtr distribution);

  mutable std::shared_mutex mutex_;
  std::vector<Entry> entries_;                          // dense, by index
  std::unordered_map<ClientId, std::uint32_t> index_;   // id -> dense index
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace tommy::core
