// The sequencer's knowledge of client clock-offset distributions
// (Figure 1's "Learned Clock Offset Distributions" box). Clients announce
// a DistributionSummary once (or re-announce to update); the registry
// materializes and caches the Distribution objects the engines query.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"

namespace tommy::core {

class ClientRegistry {
 public:
  /// Registers (or replaces) a client's offset distribution.
  void announce(ClientId client, const stats::DistributionSummary& summary);

  /// Registers a distribution object directly (simulation convenience —
  /// §4 seeds clients with their true distributions this way).
  void announce(ClientId client, stats::DistributionPtr distribution);

  [[nodiscard]] bool contains(ClientId client) const;

  /// Offset distribution f_θ for `client`. Precondition: contains(client).
  [[nodiscard]] const stats::Distribution& offset_distribution(
      ClientId client) const;

  /// True iff every registered distribution is exactly Gaussian — enables
  /// the closed-form engine and the transitivity guarantee of Appendix A.
  [[nodiscard]] bool all_gaussian() const;

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  [[nodiscard]] std::vector<ClientId> clients() const;

 private:
  std::unordered_map<ClientId, stats::DistributionPtr> table_;
};

}  // namespace tommy::core
