// The sequencer's knowledge of client clock-offset distributions
// (Figure 1's "Learned Clock Offset Distributions" box). Clients announce
// a DistributionSummary once (or re-announce to update); the registry
// materializes and caches the Distribution objects the engines query.
//
// Every client additionally gets a small dense index (0, 1, 2, ...) that
// is stable across re-announcements. Hot-path engines use these indices
// to key flat arrays (per-client constants, per-pair critical gaps)
// instead of hashing ClientIds per query. `generation()` increments on
// every announce so engines can detect stale derived tables.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"

namespace tommy::core {

class ClientRegistry {
 public:
  /// Registers (or replaces) a client's offset distribution. Idempotent:
  /// re-announcing a summary whose wire form matches the one on record
  /// changes nothing and does NOT bump the generation (so connection
  /// handshakes that re-send a known distribution don't invalidate the
  /// engines' derived tables). Returns whether the registry changed.
  bool announce(ClientId client, const stats::DistributionSummary& summary);

  /// Registers a distribution object directly (simulation convenience —
  /// §4 seeds clients with their true distributions this way). Always
  /// replaces (no wire form to compare); returns true.
  bool announce(ClientId client, stats::DistributionPtr distribution);

  [[nodiscard]] bool contains(ClientId client) const;

  /// Offset distribution f_θ for `client`. Precondition: contains(client).
  [[nodiscard]] const stats::Distribution& offset_distribution(
      ClientId client) const;

  /// Dense index of `client` in [0, size()), assigned at first announce
  /// and stable across re-announcements. Precondition: contains(client).
  [[nodiscard]] std::uint32_t index_of(ClientId client) const;

  /// Inverse of index_of. Precondition: index < size().
  [[nodiscard]] ClientId client_at(std::uint32_t index) const;

  /// Distribution by dense index. Precondition: index < size().
  [[nodiscard]] const stats::Distribution& distribution_at(
      std::uint32_t index) const;

  /// Serialized wire form of the summary `client` last announced, or
  /// nullptr when the client was registered directly with a Distribution
  /// object (no comparable wire form). Lets a wire front-end decide
  /// whether an inbound announcement is a no-op re-send or a real change.
  /// Precondition: contains(client).
  [[nodiscard]] const std::vector<std::uint8_t>* announced_summary(
      ClientId client) const;

  /// Bumped on every announce that changed the registry (new client or
  /// replacement; identical summary re-announces don't count); lets
  /// engines invalidate tables derived from the distributions.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// True iff every registered distribution is exactly Gaussian — enables
  /// the closed-form engine and the transitivity guarantee of Appendix A.
  [[nodiscard]] bool all_gaussian() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::vector<ClientId> clients() const;

 private:
  struct Entry {
    ClientId client;
    stats::DistributionPtr distribution;
    /// Wire form of the announcing summary; empty for direct
    /// Distribution announces.
    std::vector<std::uint8_t> summary_bytes;
  };

  std::vector<Entry> entries_;                          // dense, by index
  std::unordered_map<ClientId, std::uint32_t> index_;   // id -> dense index
  std::uint64_t generation_{0};
};

}  // namespace tommy::core
