#include "core/client_registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::core {

void ClientRegistry::announce(ClientId client,
                              const stats::DistributionSummary& summary) {
  announce(client, summary.materialize());
}

void ClientRegistry::announce(ClientId client,
                              stats::DistributionPtr distribution) {
  TOMMY_EXPECTS(distribution != nullptr);
  const auto it = index_.find(client);
  if (it == index_.end()) {
    const auto index = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{client, std::move(distribution)});
    index_.emplace(client, index);
  } else {
    entries_[it->second].distribution = std::move(distribution);
  }
  ++generation_;
}

bool ClientRegistry::contains(ClientId client) const {
  return index_.contains(client);
}

const stats::Distribution& ClientRegistry::offset_distribution(
    ClientId client) const {
  return *entries_[index_of(client)].distribution;
}

std::uint32_t ClientRegistry::index_of(ClientId client) const {
  const auto it = index_.find(client);
  TOMMY_EXPECTS(it != index_.end());
  return it->second;
}

ClientId ClientRegistry::client_at(std::uint32_t index) const {
  TOMMY_EXPECTS(index < entries_.size());
  return entries_[index].client;
}

const stats::Distribution& ClientRegistry::distribution_at(
    std::uint32_t index) const {
  TOMMY_EXPECTS(index < entries_.size());
  return *entries_[index].distribution;
}

bool ClientRegistry::all_gaussian() const {
  return std::all_of(entries_.begin(), entries_.end(), [](const Entry& entry) {
    return entry.distribution->is_gaussian();
  });
}

std::vector<ClientId> ClientRegistry::clients() const {
  std::vector<ClientId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.client);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tommy::core
