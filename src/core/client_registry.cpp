#include "core/client_registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::core {

void ClientRegistry::announce(ClientId client,
                              const stats::DistributionSummary& summary) {
  table_[client] = summary.materialize();
}

void ClientRegistry::announce(ClientId client,
                              stats::DistributionPtr distribution) {
  TOMMY_EXPECTS(distribution != nullptr);
  table_[client] = std::move(distribution);
}

bool ClientRegistry::contains(ClientId client) const {
  return table_.contains(client);
}

const stats::Distribution& ClientRegistry::offset_distribution(
    ClientId client) const {
  const auto it = table_.find(client);
  TOMMY_EXPECTS(it != table_.end());
  return *it->second;
}

bool ClientRegistry::all_gaussian() const {
  return std::all_of(table_.begin(), table_.end(), [](const auto& entry) {
    return entry.second->is_gaussian();
  });
}

std::vector<ClientId> ClientRegistry::clients() const {
  std::vector<ClientId> out;
  out.reserve(table_.size());
  for (const auto& [client, dist] : table_) out.push_back(client);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tommy::core
