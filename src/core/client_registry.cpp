#include "core/client_registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::core {

bool ClientRegistry::announce(ClientId client,
                              const stats::DistributionSummary& summary) {
  auto bytes = summary.serialize();
  const auto it = index_.find(client);
  if (it != index_.end() && entries_[it->second].summary_bytes == bytes) {
    return false;  // identical re-announce: keep the generation stable
  }
  announce(client, summary.materialize());
  entries_[index_.at(client)].summary_bytes = std::move(bytes);
  return true;
}

bool ClientRegistry::announce(ClientId client,
                              stats::DistributionPtr distribution) {
  TOMMY_EXPECTS(distribution != nullptr);
  const auto it = index_.find(client);
  if (it == index_.end()) {
    const auto index = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{client, std::move(distribution), {}});
    index_.emplace(client, index);
  } else {
    entries_[it->second].distribution = std::move(distribution);
    entries_[it->second].summary_bytes.clear();
  }
  ++generation_;
  return true;
}

const std::vector<std::uint8_t>* ClientRegistry::announced_summary(
    ClientId client) const {
  const Entry& entry = entries_[index_of(client)];
  return entry.summary_bytes.empty() ? nullptr : &entry.summary_bytes;
}

bool ClientRegistry::contains(ClientId client) const {
  return index_.contains(client);
}

const stats::Distribution& ClientRegistry::offset_distribution(
    ClientId client) const {
  return *entries_[index_of(client)].distribution;
}

std::uint32_t ClientRegistry::index_of(ClientId client) const {
  const auto it = index_.find(client);
  TOMMY_EXPECTS(it != index_.end());
  return it->second;
}

ClientId ClientRegistry::client_at(std::uint32_t index) const {
  TOMMY_EXPECTS(index < entries_.size());
  return entries_[index].client;
}

const stats::Distribution& ClientRegistry::distribution_at(
    std::uint32_t index) const {
  TOMMY_EXPECTS(index < entries_.size());
  return *entries_[index].distribution;
}

bool ClientRegistry::all_gaussian() const {
  return std::all_of(entries_.begin(), entries_.end(), [](const Entry& entry) {
    return entry.distribution->is_gaussian();
  });
}

std::vector<ClientId> ClientRegistry::clients() const {
  std::vector<ClientId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.client);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tommy::core
