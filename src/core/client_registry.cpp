#include "core/client_registry.hpp"

#include <algorithm>
#include <mutex>

#include "common/check.hpp"

namespace tommy::core {

ClientRegistry::ClientRegistry(ClientRegistry&& other) noexcept
    : entries_(std::move(other.entries_)),
      index_(std::move(other.index_)),
      generation_(other.generation_.load(std::memory_order_relaxed)) {}

ClientRegistry& ClientRegistry::operator=(ClientRegistry&& other) noexcept {
  if (this != &other) {
    entries_ = std::move(other.entries_);
    index_ = std::move(other.index_);
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  return *this;
}

bool ClientRegistry::announce(ClientId client,
                              const stats::DistributionSummary& summary) {
  auto bytes = summary.serialize();
  std::unique_lock lock(mutex_);
  const auto it = index_.find(client);
  if (it != index_.end() && entries_[it->second].summary_bytes == bytes) {
    return false;  // identical re-announce: keep the generation stable
  }
  announce_locked(client, summary.materialize());
  entries_[index_.at(client)].summary_bytes = std::move(bytes);
  return true;
}

bool ClientRegistry::announce(ClientId client,
                              stats::DistributionPtr distribution) {
  std::unique_lock lock(mutex_);
  return announce_locked(client, std::move(distribution));
}

bool ClientRegistry::announce_locked(ClientId client,
                                     stats::DistributionPtr distribution) {
  TOMMY_EXPECTS(distribution != nullptr);
  SharedDistribution shared(std::move(distribution));
  const auto it = index_.find(client);
  if (it == index_.end()) {
    const auto index = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{client, std::move(shared), {}});
    index_.emplace(client, index);
  } else {
    entries_[it->second].distribution = std::move(shared);
    entries_[it->second].summary_bytes.clear();
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

std::optional<std::vector<std::uint8_t>> ClientRegistry::announced_summary(
    ClientId client) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(client);
  TOMMY_EXPECTS(it != index_.end());
  const Entry& entry = entries_[it->second];
  if (entry.summary_bytes.empty()) return std::nullopt;
  return entry.summary_bytes;
}

bool ClientRegistry::contains(ClientId client) const {
  std::shared_lock lock(mutex_);
  return index_.contains(client);
}

const stats::Distribution& ClientRegistry::offset_distribution(
    ClientId client) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(client);
  TOMMY_EXPECTS(it != index_.end());
  return *entries_[it->second].distribution;
}

ClientRegistry::SharedDistribution ClientRegistry::offset_distribution_ptr(
    ClientId client) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(client);
  TOMMY_EXPECTS(it != index_.end());
  return entries_[it->second].distribution;
}

std::uint32_t ClientRegistry::index_of(ClientId client) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(client);
  TOMMY_EXPECTS(it != index_.end());
  return it->second;
}

ClientId ClientRegistry::client_at(std::uint32_t index) const {
  std::shared_lock lock(mutex_);
  TOMMY_EXPECTS(index < entries_.size());
  return entries_[index].client;
}

const stats::Distribution& ClientRegistry::distribution_at(
    std::uint32_t index) const {
  std::shared_lock lock(mutex_);
  TOMMY_EXPECTS(index < entries_.size());
  return *entries_[index].distribution;
}

ClientRegistry::SharedDistribution ClientRegistry::distribution_ptr_at(
    std::uint32_t index) const {
  std::shared_lock lock(mutex_);
  TOMMY_EXPECTS(index < entries_.size());
  return entries_[index].distribution;
}

bool ClientRegistry::all_gaussian() const {
  std::shared_lock lock(mutex_);
  return std::all_of(entries_.begin(), entries_.end(), [](const Entry& entry) {
    return entry.distribution->is_gaussian();
  });
}

std::size_t ClientRegistry::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

std::vector<ClientId> ClientRegistry::clients() const {
  std::shared_lock lock(mutex_);
  std::vector<ClientId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.client);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tommy::core
