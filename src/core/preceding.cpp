#include "core/preceding.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/math.hpp"

namespace tommy::core {

PrecedingEngine::PrecedingEngine(const ClientRegistry& registry,
                                 PrecedingConfig config)
    : registry_(registry), config_(config) {
  TOMMY_EXPECTS(config.grid_points >= 16);
}

double PrecedingEngine::preceding_probability(const Message& i,
                                              const Message& j) const {
  // Shared-ownership handles: a concurrent re-announce may replace the
  // registry entry mid-query, but these keep the sampled distributions
  // alive (and mutually consistent) for the duration of the computation.
  const auto di = registry_.offset_distribution_ptr(i.client);
  const auto dj = registry_.offset_distribution_ptr(j.client);

  if (!config_.force_numeric && di->is_gaussian() && dj->is_gaussian()) {
    // Closed form: T*_i − T*_j is Gaussian with mean
    // (T_i + μ_i) − (T_j + μ_j) and variance σ_i² + σ_j².
    const double mean_diff = (j.stamp.seconds() + dj->mean()) -
                             (i.stamp.seconds() + di->mean());
    const double spread = std::sqrt(di->variance() + dj->variance());
    TOMMY_ASSERT(spread > 0.0);
    return math::normal_cdf(mean_diff / spread);
  }

  // Numeric path: p = P(Δθ > T_i − T_j), Δθ = θ_j − θ_i.
  const double gap = i.stamp.seconds() - j.stamp.seconds();
  if (config_.cache_difference_densities) {
    const stats::GridDensity& delta = difference_density_for(i.client,
                                                             j.client);
    return math::clamp_probability(delta.tail_probability(gap));
  }
  const stats::GridDensity delta =
      stats::difference_density(*dj, *di, config_.grid_points, config_.method);
  return math::clamp_probability(delta.tail_probability(gap));
}

const stats::GridDensity& PrecedingEngine::difference_density_for(
    ClientId from, ClientId to) const {
  // A re-announce invalidates every cached Δθ density; dropping them here
  // keeps the slow path and the lazily-filled critical gaps consistent
  // with the current distributions (and with each other).
  if (cache_generation_ != registry_.generation()) {
    cache_.clear();
    lru_.clear();
    cache_generation_ = registry_.generation();
  }
  const std::size_t capacity = config_.difference_cache_capacity;
  const auto key = std::make_pair(from, to);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    if (capacity > 0) {  // refresh recency; unbounded caches skip the list
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    }
    return *it->second.density;
  }

  const auto di = registry_.offset_distribution_ptr(from);
  const auto dj = registry_.offset_distribution_ptr(to);
  auto density = std::make_unique<stats::GridDensity>(stats::difference_density(
      *dj, *di, config_.grid_points, config_.method));
  CachedDensity entry;
  entry.density = std::move(density);
  if (capacity > 0) {
    // Evict before inserting so the entry returned below can never be the
    // one trimmed away (callers hold the reference across one query).
    while (cache_.size() >= capacity && !lru_.empty()) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    entry.lru_position = lru_.begin();
  }
  const auto [inserted, ok] = cache_.emplace(key, std::move(entry));
  TOMMY_ASSERT(ok);
  return *inserted->second.density;
}

TimePoint PrecedingEngine::safe_emission_time(const Message& m,
                                              double p_safe) const {
  TOMMY_EXPECTS(p_safe > 0.0 && p_safe < 1.0);
  const auto d = registry_.offset_distribution_ptr(m.client);
  return m.stamp + Duration(d->quantile(p_safe));
}

TimePoint PrecedingEngine::completeness_frontier(ClientId client,
                                                 TimePoint high_water_stamp,
                                                 double p_safe) const {
  TOMMY_EXPECTS(p_safe > 0.0 && p_safe < 1.0);
  const auto d = registry_.offset_distribution_ptr(client);
  return high_water_stamp + Duration(d->quantile(1.0 - p_safe));
}

TimePoint PrecedingEngine::corrected_stamp(const Message& m) const {
  const auto d = registry_.offset_distribution_ptr(m.client);
  return m.stamp + Duration(d->mean());
}

bool PrecedingEngine::fast_ready(double threshold, double p_safe) const {
  return fast_.valid && fast_.threshold == threshold &&
         fast_.p_safe == p_safe && fast_.generation == registry_.generation();
}

void PrecedingEngine::prime(double threshold, double p_safe,
                            bool prefill_pairs) const {
  TOMMY_EXPECTS(threshold > 0.5 && threshold < 1.0);
  TOMMY_EXPECTS(p_safe > 0.0 && p_safe < 1.0);
  if (fast_ready(threshold, p_safe) && (!prefill_pairs || fast_.prefilled)) {
    return;
  }
  if (!fast_ready(threshold, p_safe)) {
    build_fast_tables(threshold, p_safe);
  }
  if (prefill_pairs && !fast_.prefilled) prefill_critical_gaps();
}

void PrecedingEngine::build_fast_tables(double threshold,
                                        double p_safe) const {

  FastTables t;
  t.threshold = threshold;
  t.p_safe = p_safe;
  t.generation = registry_.generation();
  t.n = registry_.size();
  t.mean.resize(t.n);
  t.safe_offset.resize(t.n);
  t.frontier_offset.resize(t.n);
  t.gaussian.resize(t.n);
  t.variance.resize(t.n);
  t.upper_width.resize(t.n);
  t.lower_width.resize(t.n);
  t.support_width.resize(t.n);
  t.critical_gap.assign(t.n * t.n,
                        std::numeric_limits<double>::quiet_NaN());
  t.max_gap_from.assign(t.n, 0.0);

  for (std::uint32_t c = 0; c < t.n; ++c) {
    const auto d = registry_.distribution_ptr_at(c);
    t.mean[c] = d->mean();
    t.safe_offset[c] = d->quantile(p_safe);
    t.frontier_offset[c] = d->quantile(1.0 - p_safe);
    t.gaussian[c] =
        static_cast<std::uint8_t>(!config_.force_numeric && d->is_gaussian());
    t.variance[c] = d->variance();
    // Same effective support the numeric Δθ grids are built on
    // (stats::difference_density) — the basis of the row bounds below.
    const stats::Support sup = d->effective_support();
    t.upper_width[c] = sup.hi - t.mean[c];
    t.lower_width[c] = t.mean[c] - sup.lo;
    t.support_width[c] = sup.width();
  }

  // Gaussian pairs get exact critical gaps now (closed form, cheap).
  // Numeric pairs stay NaN — filled on first query — but contribute a
  // support bound to the row maxima so the windowed scans are sound
  // before any convolution runs: the Δθ grid's lower edge is
  // lo_j − hi_i − dx (difference_density extends the subtrahend grid's
  // upper edge by at most one spacing dx to land on the grid), the grid
  // quantile can never fall below that edge, so
  //   g*_{ij} ≤ (μ_j − lo_j) + (hi_i − μ_i) + dx,
  // with dx doubled here for floating-point headroom.
  const double z = math::normal_quantile(threshold);
  double global = 0.0;
  for (std::uint32_t i = 0; i < t.n; ++i) {
    double row_max = -std::numeric_limits<double>::infinity();
    for (std::uint32_t j = 0; j < t.n; ++j) {
      if (t.gaussian[i] && t.gaussian[j]) {
        const double gap = z * std::sqrt(t.variance[i] + t.variance[j]);
        t.critical_gap[i * t.n + j] = gap;
        row_max = std::max(row_max, gap);
      } else {
        const double dx =
            std::min(t.support_width[i], t.support_width[j]) /
            static_cast<double>(config_.grid_points - 1);
        const double bound =
            t.lower_width[j] + t.upper_width[i] + 2.0 * dx;
        row_max = std::max(row_max, bound);
      }
    }
    t.max_gap_from[i] = row_max;
    global = std::max(global, row_max);
  }
  t.global_max_gap = global;
  t.valid = true;
  fast_ = std::move(t);
}

void PrecedingEngine::prefill_critical_gaps() const {
  TOMMY_ASSERT(fast_.valid);
  // Fill every lazy slot through the same path first queries would take
  // (numeric pairs: one convolution + one quantile each; bounded Δθ
  // caches may evict densities, but the gap scalars all land). Then
  // tighten the row bounds to the exact maxima — the windowed closure
  // scans shrink from the support bound to the true uncertainty window.
  const std::size_t n = fast_.n;
  double global = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    double row_max = -std::numeric_limits<double>::infinity();
    for (std::uint32_t j = 0; j < n; ++j) {
      row_max = std::max(row_max, fast_critical_gap(i, j));
    }
    fast_.max_gap_from[i] = row_max;
    global = std::max(global, row_max);
  }
  fast_.global_max_gap = global;
  fast_.prefilled = true;
}

double PrecedingEngine::numeric_critical_gap(std::uint32_t ci,
                                             std::uint32_t cj) const {
  // p(a, b) > threshold ⟺ T_a − T_b < q ⟺ c_b − c_a > (μ_j − μ_i) − q
  // with q = tail_quantile_Δθ(threshold); see header derivation.
  const ClientId id_i = registry_.client_at(ci);
  const ClientId id_j = registry_.client_at(cj);
  double q;
  if (config_.cache_difference_densities) {
    q = difference_density_for(id_i, id_j).tail_quantile(fast_.threshold);
  } else {
    const auto dist_j = registry_.distribution_ptr_at(cj);
    const auto dist_i = registry_.distribution_ptr_at(ci);
    const stats::GridDensity delta = stats::difference_density(
        *dist_j, *dist_i, config_.grid_points, config_.method);
    q = delta.tail_quantile(fast_.threshold);
  }
  return (fast_.mean[cj] - fast_.mean[ci]) - q;
}

double PrecedingEngine::fast_critical_gap(std::uint32_t ci,
                                          std::uint32_t cj) const {
  TOMMY_ASSERT(fast_.valid && ci < fast_.n && cj < fast_.n);
  double& slot = fast_.critical_gap[ci * fast_.n + cj];
  if (std::isnan(slot)) {
    slot = numeric_critical_gap(ci, cj);
    // Tripwire for the Cantelli row bound: the exact gap must never exceed
    // what the windowed scans assumed possible.
    TOMMY_ASSERT(slot <= fast_.max_gap_from[ci]);
  }
  return slot;
}

}  // namespace tommy::core
