#include "core/preceding.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/math.hpp"

namespace tommy::core {

PrecedingEngine::PrecedingEngine(const ClientRegistry& registry,
                                 PrecedingConfig config)
    : registry_(registry), config_(config) {
  TOMMY_EXPECTS(config.grid_points >= 16);
}

double PrecedingEngine::preceding_probability(const Message& i,
                                              const Message& j) const {
  const stats::Distribution& di = registry_.offset_distribution(i.client);
  const stats::Distribution& dj = registry_.offset_distribution(j.client);

  if (!config_.force_numeric && di.is_gaussian() && dj.is_gaussian()) {
    // Closed form: T*_i − T*_j is Gaussian with mean
    // (T_i + μ_i) − (T_j + μ_j) and variance σ_i² + σ_j².
    const double mean_diff = (j.stamp.seconds() + dj.mean()) -
                             (i.stamp.seconds() + di.mean());
    const double spread = std::sqrt(di.variance() + dj.variance());
    TOMMY_ASSERT(spread > 0.0);
    return math::normal_cdf(mean_diff / spread);
  }

  // Numeric path: p = P(Δθ > T_i − T_j), Δθ = θ_j − θ_i.
  const double gap = i.stamp.seconds() - j.stamp.seconds();
  if (config_.cache_difference_densities) {
    const stats::GridDensity& delta = difference_density_for(i.client,
                                                             j.client);
    return math::clamp_probability(delta.tail_probability(gap));
  }
  const stats::GridDensity delta =
      stats::difference_density(dj, di, config_.grid_points, config_.method);
  return math::clamp_probability(delta.tail_probability(gap));
}

const stats::GridDensity& PrecedingEngine::difference_density_for(
    ClientId from, ClientId to) const {
  const auto key = std::make_pair(from, to);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return *it->second;

  const stats::Distribution& di = registry_.offset_distribution(from);
  const stats::Distribution& dj = registry_.offset_distribution(to);
  auto density = std::make_unique<stats::GridDensity>(stats::difference_density(
      dj, di, config_.grid_points, config_.method));
  const auto [inserted, ok] = cache_.emplace(key, std::move(density));
  TOMMY_ASSERT(ok);
  return *inserted->second;
}

TimePoint PrecedingEngine::safe_emission_time(const Message& m,
                                              double p_safe) const {
  TOMMY_EXPECTS(p_safe > 0.0 && p_safe < 1.0);
  const stats::Distribution& d = registry_.offset_distribution(m.client);
  return m.stamp + Duration(d.quantile(p_safe));
}

TimePoint PrecedingEngine::completeness_frontier(ClientId client,
                                                 TimePoint high_water_stamp,
                                                 double p_safe) const {
  TOMMY_EXPECTS(p_safe > 0.0 && p_safe < 1.0);
  const stats::Distribution& d = registry_.offset_distribution(client);
  return high_water_stamp + Duration(d.quantile(1.0 - p_safe));
}

TimePoint PrecedingEngine::corrected_stamp(const Message& m) const {
  const stats::Distribution& d = registry_.offset_distribution(m.client);
  return m.stamp + Duration(d.mean());
}

}  // namespace tommy::core
