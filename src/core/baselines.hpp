// Baseline sequencers the paper compares against or motivates from:
//
//  * TrueTimeSequencer (§4's baseline) — per-message uncertainty interval;
//    messages whose intervals overlap (transitively) share a rank.
//  * WfoSequencer (Figure 2) — WaitsForOne: trusts raw local timestamps;
//    offline this reduces to sorting by T with singleton batches.
//  * FifoSequencer (Figure 4 / classical sequencers) — arrival order,
//    singleton batches.
#pragma once

#include "core/client_registry.hpp"
#include "core/sequencer.hpp"

namespace tommy::core {

struct TrueTimeConfig {
  /// Interval half-width in standard deviations ([T−3σ, T+3σ] in §4).
  double k_sigma{3.0};
  /// Center intervals on the mean-corrected stamp T + μ. The paper's one
  /// sentence writes [T−3σ, T+3σ]; a real TrueTime would center on its
  /// best estimate, so correction defaults on (see DESIGN.md). Disable to
  /// get the literal form.
  bool mean_correct{true};
};

class TrueTimeSequencer final : public Sequencer {
 public:
  TrueTimeSequencer(const ClientRegistry& registry, TrueTimeConfig config = {});

  [[nodiscard]] SequencerResult sequence(
      std::vector<Message> messages) override;
  [[nodiscard]] std::string name() const override { return "truetime"; }

 private:
  const ClientRegistry& registry_;
  TrueTimeConfig config_;
};

/// WaitsForOne: fair exactly when clock errors are negligible relative to
/// inter-message gaps. Ranks strictly by local timestamp.
class WfoSequencer final : public Sequencer {
 public:
  [[nodiscard]] SequencerResult sequence(
      std::vector<Message> messages) override;
  [[nodiscard]] std::string name() const override { return "wfo"; }
};

/// Classical arrival-order sequencer (requires Message::arrival).
class FifoSequencer final : public Sequencer {
 public:
  [[nodiscard]] SequencerResult sequence(
      std::vector<Message> messages) override;
  [[nodiscard]] std::string name() const override { return "fifo"; }
};

}  // namespace tommy::core
