// Byzantine-client guard (§5 "Byzantine Clients"): in auction-apps a
// client gains by back-dating its timestamps (claiming an earlier
// generation time to win the ordering). Tommy's statistical model gives a
// natural plausibility gate: the sequencer observes the residual
//   r = arrival − stamp = θ + network_delay   (delay >= 0),
// so r's plausible range is [Q_θ(ε), Q_θ(1−ε) + max_delay].
//
//   r too LARGE  -> the stamp claims a generation earlier than any
//                   plausible θ + delay explains: back-dating, the
//                   profitable attack (or an implausibly slow network —
//                   the max_plausible_delay knob draws that line).
//   r too SMALL  -> the stamp is from the client clock's future:
//                   forward-dating (self-defeating in a fair sequencer,
//                   but a protocol violation worth flagging).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/client_registry.hpp"
#include "core/message.hpp"

namespace tommy::core {

enum class Plausibility { kPlausible, kBackdated, kForwardDated };

struct ByzantineConfig {
  /// Tail mass treated as impossible (per side).
  double epsilon{1e-4};
  /// Largest believable network delay; residuals above
  /// Q_θ(1−ε) + max_plausible_delay are flagged kBackdated.
  Duration max_plausible_delay{Duration::from_millis(250)};
};

class ByzantineGuard {
 public:
  ByzantineGuard(const ClientRegistry& registry, ByzantineConfig config = {});

  /// Classifies one message (also records it in the per-client score).
  Plausibility inspect(const Message& m);

  /// Messages flagged (either direction) for the client.
  [[nodiscard]] std::uint64_t flagged_count(ClientId client) const;
  [[nodiscard]] std::uint64_t inspected_count(ClientId client) const;

  /// Fraction of the client's messages flagged; 0 if none inspected.
  [[nodiscard]] double suspicion_score(ClientId client) const;

  /// Clients whose suspicion score is at least `min_score` with at least
  /// `min_inspected` inspected messages.
  [[nodiscard]] std::vector<ClientId> suspects(double min_score,
                                               std::uint64_t min_inspected) const;

 private:
  struct Counts {
    std::uint64_t inspected{0};
    std::uint64_t flagged{0};
  };

  const ClientRegistry& registry_;
  ByzantineConfig config_;
  std::unordered_map<ClientId, Counts> counts_;
};

}  // namespace tommy::core
