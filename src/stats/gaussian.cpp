#include "stats/gaussian.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/math.hpp"

namespace tommy::stats {

Gaussian::Gaussian(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  TOMMY_EXPECTS(sigma > 0.0);
  TOMMY_EXPECTS(std::isfinite(mu) && std::isfinite(sigma));
}

double Gaussian::pdf(double x) const {
  return math::normal_pdf((x - mu_) / sigma_) / sigma_;
}

double Gaussian::cdf(double x) const {
  return math::normal_cdf((x - mu_) / sigma_);
}

double Gaussian::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  return mu_ + sigma_ * math::normal_quantile(p);
}

double Gaussian::sample(Rng& rng) const { return rng.normal(mu_, sigma_); }

Support Gaussian::support() const { return Support{}; }

DistributionPtr Gaussian::clone() const {
  return std::make_unique<Gaussian>(*this);
}

std::string Gaussian::describe() const {
  std::ostringstream os;
  os << "Gaussian(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

}  // namespace tommy::stats
