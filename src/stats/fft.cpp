#include "stats/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace tommy::stats {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_radix2(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  TOMMY_EXPECTS(is_pow2(n));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

}  // namespace

void fft_forward(std::vector<std::complex<double>>& data) {
  fft_radix2(data, /*inverse=*/false);
}

void fft_inverse(std::vector<std::complex<double>>& data) {
  fft_radix2(data, /*inverse=*/true);
}

std::size_t next_pow2(std::size_t n) {
  TOMMY_EXPECTS(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> fft_convolve_real(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  TOMMY_EXPECTS(!a.empty() && !b.empty());
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);

  std::vector<std::complex<double>> fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];

  fft_forward(fa);
  fft_forward(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft_inverse(fa);

  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

std::vector<double> direct_convolve_real(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  TOMMY_EXPECTS(!a.empty() && !b.empty());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

}  // namespace tommy::stats
