#include "stats/convolution.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math.hpp"
#include "stats/fft.hpp"

namespace tommy::stats {

GridDensity convolve(const GridDensity& x, const GridDensity& y,
                     ConvolutionMethod method) {
  TOMMY_EXPECTS(math::approx_equal(x.dx(), y.dx(), 1e-9, 0.0));
  const double dx = x.dx();

  std::vector<double> raw;
  switch (method) {
    case ConvolutionMethod::kDirect:
      raw = direct_convolve_real(x.values(), y.values());
      break;
    case ConvolutionMethod::kFft:
      raw = fft_convolve_real(x.values(), y.values());
      break;
  }
  // Discrete convolution approximates the integral up to a factor dx.
  for (double& v : raw) v = std::max(v * dx, 0.0);

  // Support of X + Y starts at the sum of the lower edges.
  return GridDensity(x.lo() + y.lo(), dx, std::move(raw));
}

GridDensity difference_density(const GridDensity& theta_j,
                               const GridDensity& theta_i,
                               ConvolutionMethod method) {
  return convolve(theta_j, theta_i.reflected(), method);
}

GridDensity difference_density(const Distribution& theta_j,
                               const Distribution& theta_i,
                               std::size_t points_hint,
                               ConvolutionMethod method) {
  TOMMY_EXPECTS(points_hint >= 8);

  const Support sj = theta_j.effective_support();
  const Support si = theta_i.effective_support();

  // One shared spacing: resolve the narrower of the two supports with
  // `points_hint` samples. Each grid then covers its own support with that
  // exact spacing (its upper edge is extended to land on the grid), which
  // keeps the two inputs convolvable without resampling.
  const double narrow = std::min(sj.width(), si.width());
  TOMMY_EXPECTS(narrow > 0.0);
  const double dx = narrow / static_cast<double>(points_hint - 1);

  const auto grid_for = [dx](const Distribution& d, const Support& s) {
    const auto n =
        static_cast<std::size_t>(std::ceil(s.width() / dx)) + 1;
    const double hi = s.lo + dx * static_cast<double>(n - 1);
    return GridDensity::from_distribution_on(d, s.lo, hi, n);
  };

  const GridDensity gj = grid_for(theta_j, sj);
  const GridDensity gi = grid_for(theta_i, si);
  return convolve(gj, gi.reflected(), method);
}

}  // namespace tommy::stats
