// Density convolution and the Δθ (clock-offset difference) distribution.
//
// §3.3 of the paper: the density of Δθ = θ_j − θ_i is the convolution
// f_Δθ(Δ) = ∫ f_{θj}(ξ) f_{θi}(ξ − Δ) dξ, i.e. the convolution of f_{θj}
// with the reflection of f_{θi}. The sequencer computes this once per
// client pair and then answers preceding-probability queries as tail
// integrals of f_Δθ.
#pragma once

#include <cstddef>

#include "stats/grid_density.hpp"

namespace tommy::stats {

enum class ConvolutionMethod {
  kDirect,  // O(n·m) sliding sum — reference / baseline
  kFft,     // O(n log n) zero-padded FFT — the paper's optimization
};

/// Convolves two grid densities (sum of independent variables X + Y).
/// The inputs' grid spacings must match to ~1e-9 relative tolerance.
[[nodiscard]] GridDensity convolve(const GridDensity& x, const GridDensity& y,
                                   ConvolutionMethod method =
                                       ConvolutionMethod::kFft);

/// Density of Δθ = θ_j − θ_i given the two offset densities on grids with
/// equal spacing: convolve(f_j, reflect(f_i)).
[[nodiscard]] GridDensity difference_density(const GridDensity& theta_j,
                                             const GridDensity& theta_i,
                                             ConvolutionMethod method =
                                                 ConvolutionMethod::kFft);

/// Discretizes two arbitrary distributions onto compatible grids (equal
/// spacing chosen from the finer effective support) and returns the Δθ
/// density for (θ_j − θ_i). `points_hint` bounds the per-input grid size.
[[nodiscard]] GridDensity difference_density(const Distribution& theta_j,
                                             const Distribution& theta_i,
                                             std::size_t points_hint = 1024,
                                             ConvolutionMethod method =
                                                 ConvolutionMethod::kFft);

}  // namespace tommy::stats
