// Abstract interface for one-dimensional continuous probability
// distributions. Tommy models each client's clock offset θ as a
// distribution; everything the sequencer does (preceding probabilities,
// safe-emission quantiles, convolutions) goes through this interface.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "common/rng.hpp"

namespace tommy::stats {

/// Closed support interval of a density; endpoints may be ±infinity.
struct Support {
  double lo{-std::numeric_limits<double>::infinity()};
  double hi{std::numeric_limits<double>::infinity()};

  [[nodiscard]] bool is_bounded() const;
  [[nodiscard]] double width() const { return hi - lo; }
};

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x. Non-negative; integrates to 1 over support.
  [[nodiscard]] virtual double pdf(double x) const = 0;

  /// Cumulative distribution P(X <= x). Monotone non-decreasing in x.
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Inverse CDF for p in (0, 1). The default implementation brackets the
  /// root around mean() ± k·stddev() and bisects the CDF — exactly the
  /// "binary search on future timestamps" the paper proposes for computing
  /// safe emission times. Closed-form subclasses override this.
  [[nodiscard]] virtual double quantile(double p) const;

  /// First moment. Must be finite for all distributions in this library.
  [[nodiscard]] virtual double mean() const = 0;

  /// Second central moment.
  [[nodiscard]] virtual double variance() const = 0;

  [[nodiscard]] double stddev() const;

  /// Draws one variate. Default: inverse-transform sampling via quantile().
  [[nodiscard]] virtual double sample(Rng& rng) const;

  /// Support of the density (used to choose discretization grids).
  [[nodiscard]] virtual Support support() const = 0;

  /// A finite interval [q(eps), q(1-eps)] that carries all but `2*eps` of
  /// the mass; bounded supports are returned exactly.
  [[nodiscard]] Support effective_support(double eps = 1e-9) const;

  /// Deep copy preserving the dynamic type.
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Human-readable one-line description, e.g. "Gaussian(mu=2, sigma=5)".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// True iff this is exactly Gaussian — lets the preceding-probability
  /// engine pick the closed form over the numeric path.
  [[nodiscard]] virtual bool is_gaussian() const { return false; }
};

using DistributionPtr = std::unique_ptr<Distribution>;

}  // namespace tommy::stats
