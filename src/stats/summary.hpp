// DistributionSummary: the serializable description of a client's clock
// offset distribution, i.e. exactly what "clients share their respective
// distributions with the sequencer" (§3.3) puts on the wire. Two encodings
// are supported — a Gaussian parameter pair (the common case, enables the
// closed-form engine) and a histogram (arbitrary shapes) — plus a compact
// binary wire format used by the net layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "stats/distribution.hpp"

namespace tommy::stats {

struct GaussianParams {
  double mu{0.0};
  double sigma{1.0};

  friend bool operator==(const GaussianParams&, const GaussianParams&) =
      default;
};

struct HistogramParams {
  double lo{0.0};
  double hi{1.0};
  std::vector<double> bin_masses;

  friend bool operator==(const HistogramParams&, const HistogramParams&) =
      default;
};

class DistributionSummary {
 public:
  DistributionSummary() : payload_(GaussianParams{}) {}
  explicit DistributionSummary(GaussianParams params);
  explicit DistributionSummary(HistogramParams params);

  /// Describes an arbitrary Distribution: exact parameters for a Gaussian,
  /// otherwise a `bins`-bin histogram over the effective support.
  [[nodiscard]] static DistributionSummary describe(const Distribution& dist,
                                                    std::size_t bins = 128);

  [[nodiscard]] bool is_gaussian() const;
  [[nodiscard]] const GaussianParams* gaussian() const;
  [[nodiscard]] const HistogramParams* histogram() const;

  /// Reconstructs a Distribution object usable by the sequencer's engines.
  [[nodiscard]] DistributionPtr materialize() const;

  /// Compact binary encoding (little-endian doubles, u32 sizes).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses bytes produced by serialize(); nullopt on malformed input.
  [[nodiscard]] static std::optional<DistributionSummary> deserialize(
      const std::vector<std::uint8_t>& bytes);

  /// Wire size in bytes of serialize()'s output.
  [[nodiscard]] std::size_t wire_size() const;

  [[nodiscard]] std::string describe_text() const;

  friend bool operator==(const DistributionSummary&,
                         const DistributionSummary&) = default;

 private:
  std::variant<GaussianParams, HistogramParams> payload_;
};

}  // namespace tommy::stats
