#include "stats/grid_density.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math.hpp"

namespace tommy::stats {

GridDensity::GridDensity(double lo, double dx, std::vector<double> values)
    : lo_(lo), dx_(dx), values_(std::move(values)) {
  TOMMY_EXPECTS(std::isfinite(lo) && std::isfinite(dx) && dx > 0.0);
  TOMMY_EXPECTS(values_.size() >= 2);
  for (double& v : values_) v = std::max(v, 0.0);
  const double mass = math::trapezoid(values_, dx_);
  TOMMY_EXPECTS(mass > 0.0);
  for (double& v : values_) v /= mass;
  build_cdf();
}

GridDensity GridDensity::from_distribution(const Distribution& dist,
                                           std::size_t points,
                                           double tail_eps) {
  const Support sup = dist.effective_support(tail_eps);
  return from_distribution_on(dist, sup.lo, sup.hi, points);
}

GridDensity GridDensity::from_distribution_on(const Distribution& dist,
                                              double lo, double hi,
                                              std::size_t points) {
  TOMMY_EXPECTS(points >= 2);
  TOMMY_EXPECTS(lo < hi);
  const double dx = (hi - lo) / static_cast<double>(points - 1);
  std::vector<double> values(points);
  for (std::size_t k = 0; k < points; ++k) {
    values[k] = dist.pdf(lo + static_cast<double>(k) * dx);
  }
  return GridDensity(lo, dx, std::move(values));
}

void GridDensity::build_cdf() {
  cdf_ = math::cumulative_trapezoid(values_, dx_);
  // Normalize away the last drop of quadrature error and clamp monotone.
  const double total = cdf_.back();
  TOMMY_ASSERT(total > 0.0);
  for (double& c : cdf_) c = std::min(c / total, 1.0);
  cdf_.back() = 1.0;
}

double GridDensity::pdf(double x) const {
  if (x < lo_ || x > hi()) return 0.0;
  const double pos = (x - lo_) / dx_;
  const auto k = std::min(static_cast<std::size_t>(pos), values_.size() - 2);
  const double frac = pos - static_cast<double>(k);
  return values_[k] + frac * (values_[k + 1] - values_[k]);
}

double GridDensity::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi()) return 1.0;
  const double pos = (x - lo_) / dx_;
  const auto k = std::min(static_cast<std::size_t>(pos), values_.size() - 2);
  const double frac = pos - static_cast<double>(k);
  return math::clamp_probability(cdf_[k] + frac * (cdf_[k + 1] - cdf_[k]));
}

double GridDensity::quantile(double p) const {
  TOMMY_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return lo_;
  if (p >= 1.0) return hi();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  const auto k = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(it - cdf_.begin() - 1, 0));
  const double c0 = cdf_[k];
  const double c1 = cdf_[std::min(k + 1, cdf_.size() - 1)];
  const double frac = (c1 > c0) ? (p - c0) / (c1 - c0) : 0.5;
  return lo_ + (static_cast<double>(k) + frac) * dx_;
}

double GridDensity::tail_probability(double x) const { return 1.0 - cdf(x); }

double GridDensity::tail_quantile(double p) const {
  TOMMY_EXPECTS(p >= 0.0 && p <= 1.0);
  return quantile(1.0 - p);
}

double GridDensity::mean() const {
  std::vector<double> xw(values_.size());
  for (std::size_t k = 0; k < values_.size(); ++k) {
    xw[k] = (lo_ + static_cast<double>(k) * dx_) * values_[k];
  }
  return math::trapezoid(xw, dx_);
}

double GridDensity::variance() const {
  const double m = mean();
  std::vector<double> xw(values_.size());
  for (std::size_t k = 0; k < values_.size(); ++k) {
    const double x = lo_ + static_cast<double>(k) * dx_;
    xw[k] = (x - m) * (x - m) * values_[k];
  }
  return math::trapezoid(xw, dx_);
}

GridDensity GridDensity::reflected() const {
  std::vector<double> rev(values_.rbegin(), values_.rend());
  return GridDensity(-hi(), dx_, std::move(rev));
}

}  // namespace tommy::stats
