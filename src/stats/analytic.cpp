#include "stats/analytic.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "common/check.hpp"

namespace tommy::stats {

namespace {

// Euler–Mascheroni constant (Gumbel mean).
constexpr double kEulerGamma = 0.5772156649015328606;

// Regularized incomplete beta I_x(a, b) via the Lentz continued fraction
// (Numerical Recipes `betacf`), needed for the Student-t CDF.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

double reg_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_bt = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                       a * std::log(x) + b * std::log1p(-x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

}  // namespace

// ---------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  TOMMY_EXPECTS(std::isfinite(lo) && std::isfinite(hi));
  TOMMY_EXPECTS(lo < hi);
}

double Uniform::pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  return lo_ + p * (hi_ - lo_);
}

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

DistributionPtr Uniform::clone() const {
  return std::make_unique<Uniform>(*this);
}

std::string Uniform::describe() const {
  std::ostringstream os;
  os << "Uniform(lo=" << lo_ << ", hi=" << hi_ << ")";
  return os.str();
}

// ---------------------------------------------------------------- Laplace

Laplace::Laplace(double location, double scale)
    : location_(location), scale_(scale) {
  TOMMY_EXPECTS(scale > 0.0);
}

double Laplace::pdf(double x) const {
  return std::exp(-std::abs(x - location_) / scale_) / (2.0 * scale_);
}

double Laplace::cdf(double x) const {
  if (x < location_) return 0.5 * std::exp((x - location_) / scale_);
  return 1.0 - 0.5 * std::exp(-(x - location_) / scale_);
}

double Laplace::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  if (p < 0.5) return location_ + scale_ * std::log(2.0 * p);
  return location_ - scale_ * std::log(2.0 * (1.0 - p));
}

DistributionPtr Laplace::clone() const {
  return std::make_unique<Laplace>(*this);
}

std::string Laplace::describe() const {
  std::ostringstream os;
  os << "Laplace(location=" << location_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ----------------------------------------------------- ShiftedExponential

ShiftedExponential::ShiftedExponential(double location, double scale)
    : location_(location), scale_(scale) {
  TOMMY_EXPECTS(scale > 0.0);
}

double ShiftedExponential::pdf(double x) const {
  if (x < location_) return 0.0;
  return std::exp(-(x - location_) / scale_) / scale_;
}

double ShiftedExponential::cdf(double x) const {
  if (x <= location_) return 0.0;
  return 1.0 - std::exp(-(x - location_) / scale_);
}

double ShiftedExponential::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  return location_ - scale_ * std::log1p(-p);
}

Support ShiftedExponential::support() const {
  return {location_, std::numeric_limits<double>::infinity()};
}

DistributionPtr ShiftedExponential::clone() const {
  return std::make_unique<ShiftedExponential>(*this);
}

std::string ShiftedExponential::describe() const {
  std::ostringstream os;
  os << "ShiftedExponential(location=" << location_ << ", scale=" << scale_
     << ")";
  return os.str();
}

// ----------------------------------------------------------------- Gumbel

Gumbel::Gumbel(double location, double scale)
    : location_(location), scale_(scale) {
  TOMMY_EXPECTS(scale > 0.0);
}

double Gumbel::pdf(double x) const {
  const double z = (x - location_) / scale_;
  return std::exp(-z - std::exp(-z)) / scale_;
}

double Gumbel::cdf(double x) const {
  const double z = (x - location_) / scale_;
  return std::exp(-std::exp(-z));
}

double Gumbel::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  return location_ - scale_ * std::log(-std::log(p));
}

double Gumbel::mean() const { return location_ + scale_ * kEulerGamma; }

double Gumbel::variance() const {
  return std::numbers::pi * std::numbers::pi / 6.0 * scale_ * scale_;
}

DistributionPtr Gumbel::clone() const {
  return std::make_unique<Gumbel>(*this);
}

std::string Gumbel::describe() const {
  std::ostringstream os;
  os << "Gumbel(location=" << location_ << ", scale=" << scale_ << ")";
  return os.str();
}

// --------------------------------------------------------------- Logistic

Logistic::Logistic(double location, double scale)
    : location_(location), scale_(scale) {
  TOMMY_EXPECTS(scale > 0.0);
}

double Logistic::pdf(double x) const {
  const double z = (x - location_) / scale_;
  const double e = std::exp(-std::abs(z));
  const double denom = (1.0 + e) * (1.0 + e);
  return e / (scale_ * denom);
}

double Logistic::cdf(double x) const {
  const double z = (x - location_) / scale_;
  return 1.0 / (1.0 + std::exp(-z));
}

double Logistic::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  return location_ + scale_ * std::log(p / (1.0 - p));
}

double Logistic::variance() const {
  return scale_ * scale_ * std::numbers::pi * std::numbers::pi / 3.0;
}

DistributionPtr Logistic::clone() const {
  return std::make_unique<Logistic>(*this);
}

std::string Logistic::describe() const {
  std::ostringstream os;
  os << "Logistic(location=" << location_ << ", scale=" << scale_ << ")";
  return os.str();
}

// --------------------------------------------------------------- StudentT

StudentT::StudentT(double df, double location, double scale)
    : df_(df), location_(location), scale_(scale) {
  TOMMY_EXPECTS(df > 2.0);  // finite variance required by the engine
  TOMMY_EXPECTS(scale > 0.0);
}

double StudentT::pdf(double x) const {
  const double z = (x - location_) / scale_;
  const double ln_norm = std::lgamma((df_ + 1.0) / 2.0) -
                         std::lgamma(df_ / 2.0) -
                         0.5 * std::log(df_ * std::numbers::pi);
  return std::exp(ln_norm -
                  (df_ + 1.0) / 2.0 * std::log1p(z * z / df_)) /
         scale_;
}

double StudentT::cdf(double x) const {
  const double z = (x - location_) / scale_;
  const double ib = reg_incomplete_beta(df_ / 2.0, 0.5, df_ / (df_ + z * z));
  return z >= 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double StudentT::variance() const {
  return scale_ * scale_ * df_ / (df_ - 2.0);
}

DistributionPtr StudentT::clone() const {
  return std::make_unique<StudentT>(*this);
}

std::string StudentT::describe() const {
  std::ostringstream os;
  os << "StudentT(df=" << df_ << ", location=" << location_
     << ", scale=" << scale_ << ")";
  return os.str();
}

}  // namespace tommy::stats
