// Iterative radix-2 FFT. Self-contained (no external dependency) and used
// by the convolution engine to realize the paper's §3.3 optimization:
// "convolution in the time domain is multiplication in the frequency
// domain", turning the O(n²) pairwise-density convolution into O(n log n).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace tommy::stats {

/// In-place forward FFT. `data.size()` must be a power of two.
void fft_forward(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/n normalization).
void fft_inverse(std::vector<std::complex<double>>& data);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Linear convolution of two real sequences via zero-padded FFT; result
/// length is a.size() + b.size() - 1.
[[nodiscard]] std::vector<double> fft_convolve_real(
    const std::vector<double>& a, const std::vector<double>& b);

/// Reference O(n·m) direct linear convolution (same semantics); used as a
/// correctness oracle and as the quadratic baseline in bench_convolution.
[[nodiscard]] std::vector<double> direct_convolve_real(
    const std::vector<double>& a, const std::vector<double>& b);

}  // namespace tommy::stats
