#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/math.hpp"

namespace tommy::stats {

KernelDensity::KernelDensity(std::span<const double> samples, double bandwidth)
    : samples_(samples.begin(), samples.end()) {
  TOMMY_EXPECTS(samples_.size() >= 2);

  mean_ = math::mean(samples_);
  const double sample_var = math::variance(samples_);
  TOMMY_EXPECTS(sample_var > 0.0);

  if (bandwidth > 0.0) {
    bandwidth_ = bandwidth;
  } else {
    // Silverman's rule of thumb with the IQR refinement.
    const double sd = std::sqrt(sample_var);
    const double iqr = math::sample_quantile(samples_, 0.75) -
                       math::sample_quantile(samples_, 0.25);
    const double spread = iqr > 0.0 ? std::min(sd, iqr / 1.34) : sd;
    bandwidth_ =
        0.9 * spread *
        std::pow(static_cast<double>(samples_.size()), -0.2);
  }
  TOMMY_ENSURES(bandwidth_ > 0.0);

  // KDE variance = sample variance + h² (kernel inflation), using the
  // population variance of the sample points as the mixture-of-kernels law.
  double pop_var = 0.0;
  for (double x : samples_) pop_var += (x - mean_) * (x - mean_);
  pop_var /= static_cast<double>(samples_.size());
  variance_ = pop_var + bandwidth_ * bandwidth_;
}

double KernelDensity::pdf(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    acc += math::normal_pdf((x - s) / bandwidth_);
  }
  return acc / (static_cast<double>(samples_.size()) * bandwidth_);
}

double KernelDensity::cdf(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    acc += math::normal_cdf((x - s) / bandwidth_);
  }
  return acc / static_cast<double>(samples_.size());
}

double KernelDensity::sample(Rng& rng) const {
  // Mixture sampling: pick a data point, jitter by the kernel.
  const auto idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(samples_.size()) - 1));
  return rng.normal(samples_[idx], bandwidth_);
}

DistributionPtr KernelDensity::clone() const {
  return std::make_unique<KernelDensity>(*this);
}

std::string KernelDensity::describe() const {
  std::ostringstream os;
  os << "KernelDensity(n=" << samples_.size() << ", h=" << bandwidth_ << ")";
  return os.str();
}

}  // namespace tommy::stats
