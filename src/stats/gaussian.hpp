// Gaussian (normal) distribution. The paper's primary clock-offset model:
// Appendix A proves the likely-happened-before relation is transitive when
// all offsets are Gaussian, and §3.2 gives the closed-form preceding
// probability that GaussianPreceding (core) uses.
#pragma once

#include "stats/distribution.hpp"

namespace tommy::stats {

class Gaussian final : public Distribution {
 public:
  /// Requires sigma > 0 (use a tiny sigma to approximate a perfect clock).
  Gaussian(double mu, double sigma);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return mu_; }
  [[nodiscard]] double variance() const override { return sigma_ * sigma_; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] bool is_gaussian() const override { return true; }

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace tommy::stats
