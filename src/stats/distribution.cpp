#include "stats/distribution.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tommy::stats {

bool Support::is_bounded() const {
  return std::isfinite(lo) && std::isfinite(hi);
}

double Distribution::stddev() const { return std::sqrt(variance()); }

double Distribution::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);

  const Support sup = support();
  double lo = sup.lo;
  double hi = sup.hi;

  // Establish a finite bracket around the central region, expanding
  // geometrically until the CDF straddles p.
  const double center = mean();
  const double scale = std::max(stddev(), 1e-12);
  if (!std::isfinite(lo)) {
    lo = center - 8.0 * scale;
    while (cdf(lo) > p) lo = center - 2.0 * (center - lo);
  }
  if (!std::isfinite(hi)) {
    hi = center + 8.0 * scale;
    while (cdf(hi) < p) hi = center + 2.0 * (hi - center);
  }

  // Bisection: robust against flat CDF regions, ~50 iterations reach the
  // limit of double spacing on any practical range.
  for (int iter = 0; iter < 200 && hi - lo > 1e-15 * (1.0 + std::abs(lo));
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Distribution::sample(Rng& rng) const {
  double u = rng.next_double();
  // Keep u inside the open interval required by quantile().
  u = std::min(std::max(u, 1e-16), 1.0 - 1e-16);
  return quantile(u);
}

Support Distribution::effective_support(double eps) const {
  TOMMY_EXPECTS(eps > 0.0 && eps < 0.5);
  const Support sup = support();
  Support out = sup;
  if (!std::isfinite(sup.lo)) out.lo = quantile(eps);
  if (!std::isfinite(sup.hi)) out.hi = quantile(1.0 - eps);
  return out;
}

}  // namespace tommy::stats
