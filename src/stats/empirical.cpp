#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace tommy::stats {

Empirical::Empirical(double lo, double hi, std::vector<double> bin_masses)
    : lo_(lo), hi_(hi), masses_(std::move(bin_masses)) {
  TOMMY_EXPECTS(std::isfinite(lo) && std::isfinite(hi) && lo < hi);
  TOMMY_EXPECTS(!masses_.empty());
  bin_width_ = (hi_ - lo_) / static_cast<double>(masses_.size());

  double total = 0.0;
  for (double m : masses_) {
    TOMMY_EXPECTS(m >= 0.0);
    total += m;
  }
  TOMMY_EXPECTS(total > 0.0);
  for (double& m : masses_) m /= total;

  cumulative_.resize(masses_.size() + 1, 0.0);
  for (std::size_t k = 0; k < masses_.size(); ++k) {
    cumulative_[k + 1] = cumulative_[k] + masses_[k];
  }
  cumulative_.back() = 1.0;  // kill rounding drift

  compute_moments();
}

Empirical Empirical::from_samples(std::span<const double> samples,
                                  std::size_t bin_count) {
  TOMMY_EXPECTS(!samples.empty());
  TOMMY_EXPECTS(bin_count >= 1);

  auto [min_it, max_it] = std::minmax_element(samples.begin(), samples.end());
  double lo = *min_it;
  double hi = *max_it;
  // Widen degenerate/tight ranges so all samples are interior.
  const double pad = std::max((hi - lo) * 1e-3, 1e-12);
  lo -= pad;
  hi += pad;

  std::vector<double> masses(bin_count, 0.0);
  const double width = (hi - lo) / static_cast<double>(bin_count);
  for (double x : samples) {
    auto idx = static_cast<std::size_t>((x - lo) / width);
    idx = std::min(idx, bin_count - 1);
    masses[idx] += 1.0;
  }
  return Empirical(lo, hi, std::move(masses));
}

void Empirical::compute_moments() {
  double m1 = 0.0;
  double m2 = 0.0;
  for (std::size_t k = 0; k < masses_.size(); ++k) {
    // Treat bin mass as uniform within the bin.
    const double a = lo_ + static_cast<double>(k) * bin_width_;
    const double b = a + bin_width_;
    const double center = 0.5 * (a + b);
    m1 += masses_[k] * center;
    // E[X^2] over a uniform bin: center^2 + width^2/12.
    m2 += masses_[k] * (center * center + bin_width_ * bin_width_ / 12.0);
  }
  mean_ = m1;
  variance_ = std::max(0.0, m2 - m1 * m1);
}

double Empirical::pdf(double x) const {
  if (x < lo_ || x >= hi_) return 0.0;
  const auto idx = std::min(static_cast<std::size_t>((x - lo_) / bin_width_),
                            masses_.size() - 1);
  return masses_[idx] / bin_width_;
}

double Empirical::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / bin_width_;
  const auto idx =
      std::min(static_cast<std::size_t>(pos), masses_.size() - 1);
  const double frac = pos - static_cast<double>(idx);
  return cumulative_[idx] + frac * masses_[idx];
}

double Empirical::quantile(double p) const {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);
  // First bin whose cumulative upper bound reaches p.
  const auto it =
      std::lower_bound(cumulative_.begin() + 1, cumulative_.end(), p);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  const double within = masses_[idx] > 0.0
                            ? (p - cumulative_[idx]) / masses_[idx]
                            : 0.5;
  return lo_ + (static_cast<double>(idx) + within) * bin_width_;
}

double Empirical::sample(Rng& rng) const {
  double u = rng.next_double();
  u = std::min(std::max(u, 1e-16), 1.0 - 1e-16);
  return quantile(u);
}

DistributionPtr Empirical::clone() const {
  return std::make_unique<Empirical>(*this);
}

std::string Empirical::describe() const {
  std::ostringstream os;
  os << "Empirical(lo=" << lo_ << ", hi=" << hi_ << ", bins=" << masses_.size()
     << ")";
  return os.str();
}

}  // namespace tommy::stats
