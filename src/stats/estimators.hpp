// Offset-distribution estimators. §5 of the paper: "Any clock
// synchronization protocol gives each client enough information to estimate
// its offsets distribution." Clients feed raw offset samples (from sync
// probes) into one of these estimators and ship the fitted distribution to
// the sequencer.
#pragma once

#include <span>

#include "stats/distribution.hpp"
#include "stats/empirical.hpp"
#include "stats/gaussian.hpp"

namespace tommy::stats {

/// Moment-matched Gaussian fit (sample mean, unbiased sample stddev).
/// Requires >= 2 samples with nonzero spread.
[[nodiscard]] Gaussian fit_gaussian(std::span<const double> samples);

/// Robust Gaussian fit: median for location, 1.4826·MAD for scale —
/// insensitive to the occasional wild probe (queueing spikes, §5's
/// "extraordinary conditions"). Requires >= 2 samples with nonzero MAD.
[[nodiscard]] Gaussian fit_gaussian_robust(std::span<const double> samples);

/// Histogram fit with an explicit bin count.
[[nodiscard]] Empirical fit_histogram(std::span<const double> samples,
                                      std::size_t bin_count);

/// Histogram fit choosing bins by the Freedman–Diaconis rule (clamped to
/// [min_bins, max_bins]).
[[nodiscard]] Empirical fit_histogram_auto(std::span<const double> samples,
                                           std::size_t min_bins = 8,
                                           std::size_t max_bins = 256);

/// Integrated absolute error ∫|f̂ − f| between a fitted distribution and a
/// reference, evaluated by trapezoid on the union of effective supports.
/// Ranges over [0, 2]; 0 means identical densities. Used to quantify how
/// much the "learned" path loses versus seeded ground truth (§4's caveat).
[[nodiscard]] double density_l1_error(const Distribution& fitted,
                                      const Distribution& reference,
                                      std::size_t points = 2048);

}  // namespace tommy::stats
