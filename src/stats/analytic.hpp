// Closed-form analytic distributions beyond the Gaussian. These model the
// non-Gaussian clock-offset behaviours the paper calls out in §3.3:
// long tails and skew (Gumbel, shifted exponential), heavy symmetric tails
// (Laplace, logistic, Student-t), and bounded errors (uniform).
#pragma once

#include "stats/distribution.hpp"

namespace tommy::stats {

/// Uniform density on [lo, hi].
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] Support support() const override { return {lo_, hi_}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// Laplace (double exponential): heavy symmetric tails around `location`.
class Laplace final : public Distribution {
 public:
  Laplace(double location, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return location_; }
  [[nodiscard]] double variance() const override {
    return 2.0 * scale_ * scale_;
  }
  [[nodiscard]] Support support() const override { return Support{}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double location_;
  double scale_;
};

/// Exponential shifted to start at `location`: one-sided skew, the shape of
/// queueing-induced clock error (a probe can only be delayed, not sped up).
class ShiftedExponential final : public Distribution {
 public:
  ShiftedExponential(double location, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return location_ + scale_; }
  [[nodiscard]] double variance() const override { return scale_ * scale_; }
  [[nodiscard]] Support support() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double location_;
  double scale_;
};

/// Gumbel (type-I extreme value): right-skewed with a long upper tail —
/// the "Gaussian-like but long-tailed and skewed" shape reported for real
/// clock offset data ([27] in the paper).
class Gumbel final : public Distribution {
 public:
  Gumbel(double location, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override { return Support{}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double location_;
  double scale_;
};

/// Logistic: symmetric, slightly heavier tails than Gaussian, closed-form
/// CDF/quantile — a cheap stand-in when erf is too expensive.
class Logistic final : public Distribution {
 public:
  Logistic(double location, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return location_; }
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override { return Support{}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double location_;
  double scale_;
};

/// Student-t with location/scale; df > 2 so the variance is finite.
/// Models rare large clock excursions (temperature events, §5).
class StudentT final : public Distribution {
 public:
  StudentT(double df, double location, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return location_; }
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override { return Support{}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double df_;
  double location_;
  double scale_;
};

}  // namespace tommy::stats
