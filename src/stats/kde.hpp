// Gaussian kernel density estimator. An alternative to histogram fitting
// when a client has few sync-probe samples: smooth density, no binning
// artifacts, at the cost of O(samples) pdf evaluation.
#pragma once

#include <span>
#include <vector>

#include "stats/distribution.hpp"

namespace tommy::stats {

class KernelDensity final : public Distribution {
 public:
  /// Gaussian-kernel KDE over `samples`. `bandwidth <= 0` selects
  /// Silverman's rule-of-thumb bandwidth. Requires >= 2 distinct samples.
  explicit KernelDensity(std::span<const double> samples,
                         double bandwidth = 0.0);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return variance_; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] Support support() const override { return Support{}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  double bandwidth_;
  double mean_;
  double variance_;
};

}  // namespace tommy::stats
