#include "stats/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"

namespace tommy::stats {

namespace {

double median_of(std::vector<double> xs) {
  TOMMY_EXPECTS(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

}  // namespace

Gaussian fit_gaussian(std::span<const double> samples) {
  TOMMY_EXPECTS(samples.size() >= 2);
  const double mu = math::mean(samples);
  const double sigma = math::stddev(samples);
  TOMMY_EXPECTS(sigma > 0.0);
  return Gaussian(mu, sigma);
}

Gaussian fit_gaussian_robust(std::span<const double> samples) {
  TOMMY_EXPECTS(samples.size() >= 2);
  std::vector<double> xs(samples.begin(), samples.end());
  const double med = median_of(xs);
  std::vector<double> devs(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) devs[i] = std::abs(xs[i] - med);
  const double mad = median_of(std::move(devs));
  TOMMY_EXPECTS(mad > 0.0);
  // 1.4826 makes MAD a consistent sigma estimator under Gaussian data.
  return Gaussian(med, 1.4826 * mad);
}

Empirical fit_histogram(std::span<const double> samples,
                        std::size_t bin_count) {
  return Empirical::from_samples(samples, bin_count);
}

Empirical fit_histogram_auto(std::span<const double> samples,
                             std::size_t min_bins, std::size_t max_bins) {
  TOMMY_EXPECTS(!samples.empty());
  TOMMY_EXPECTS(min_bins >= 1 && min_bins <= max_bins);

  const double q1 = math::sample_quantile(samples, 0.25);
  const double q3 = math::sample_quantile(samples, 0.75);
  const double iqr = q3 - q1;
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  const double range = *max_it - *min_it;

  std::size_t bins = min_bins;
  if (iqr > 0.0 && range > 0.0) {
    const double width =
        2.0 * iqr / std::cbrt(static_cast<double>(samples.size()));
    bins = static_cast<std::size_t>(std::ceil(range / width));
  }
  bins = std::clamp(bins, min_bins, max_bins);
  return Empirical::from_samples(samples, bins);
}

double density_l1_error(const Distribution& fitted,
                        const Distribution& reference, std::size_t points) {
  TOMMY_EXPECTS(points >= 16);
  const Support sf = fitted.effective_support();
  const Support sr = reference.effective_support();
  const double lo = std::min(sf.lo, sr.lo);
  const double hi = std::max(sf.hi, sr.hi);
  const double dx = (hi - lo) / static_cast<double>(points - 1);

  std::vector<double> diff(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double x = lo + static_cast<double>(k) * dx;
    diff[k] = std::abs(fitted.pdf(x) - reference.pdf(x));
  }
  return math::trapezoid(diff, dx);
}

}  // namespace tommy::stats
