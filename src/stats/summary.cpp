#include "stats/summary.hpp"

#include <cstring>
#include <sstream>

#include "common/check.hpp"
#include "stats/empirical.hpp"
#include "stats/gaussian.hpp"
#include "stats/grid_density.hpp"

namespace tommy::stats {

namespace {

constexpr std::uint8_t kTagGaussian = 1;
constexpr std::uint8_t kTagHistogram = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

bool get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos,
             std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)]) << (8 * i);
  pos += 4;
  return true;
}

bool get_f64(const std::vector<std::uint8_t>& in, std::size_t& pos,
             double& v) {
  if (pos + 8 > in.size()) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)]) << (8 * i);
  pos += 8;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

}  // namespace

DistributionSummary::DistributionSummary(GaussianParams params)
    : payload_(params) {
  TOMMY_EXPECTS(params.sigma > 0.0);
}

DistributionSummary::DistributionSummary(HistogramParams params)
    : payload_(std::move(params)) {
  const auto& h = std::get<HistogramParams>(payload_);
  TOMMY_EXPECTS(h.lo < h.hi);
  TOMMY_EXPECTS(!h.bin_masses.empty());
}

DistributionSummary DistributionSummary::describe(const Distribution& dist,
                                                  std::size_t bins) {
  if (dist.is_gaussian()) {
    return DistributionSummary(GaussianParams{dist.mean(), dist.stddev()});
  }
  const Support sup = dist.effective_support();
  const GridDensity grid =
      GridDensity::from_distribution_on(dist, sup.lo, sup.hi, bins + 1);
  std::vector<double> masses(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    const double a = grid.lo() + static_cast<double>(k) * grid.dx();
    masses[k] = std::max(grid.cdf(a + grid.dx()) - grid.cdf(a), 0.0);
  }
  return DistributionSummary(HistogramParams{sup.lo, grid.hi(), std::move(masses)});
}

bool DistributionSummary::is_gaussian() const {
  return std::holds_alternative<GaussianParams>(payload_);
}

const GaussianParams* DistributionSummary::gaussian() const {
  return std::get_if<GaussianParams>(&payload_);
}

const HistogramParams* DistributionSummary::histogram() const {
  return std::get_if<HistogramParams>(&payload_);
}

DistributionPtr DistributionSummary::materialize() const {
  if (const auto* g = gaussian()) {
    return std::make_unique<Gaussian>(g->mu, g->sigma);
  }
  const auto* h = histogram();
  TOMMY_ASSERT(h != nullptr);
  return std::make_unique<Empirical>(h->lo, h->hi, h->bin_masses);
}

std::vector<std::uint8_t> DistributionSummary::serialize() const {
  std::vector<std::uint8_t> out;
  if (const auto* g = gaussian()) {
    out.reserve(1 + 16);
    out.push_back(kTagGaussian);
    put_f64(out, g->mu);
    put_f64(out, g->sigma);
    return out;
  }
  const auto* h = histogram();
  TOMMY_ASSERT(h != nullptr);
  out.reserve(1 + 16 + 4 + 8 * h->bin_masses.size());
  out.push_back(kTagHistogram);
  put_f64(out, h->lo);
  put_f64(out, h->hi);
  put_u32(out, static_cast<std::uint32_t>(h->bin_masses.size()));
  for (double m : h->bin_masses) put_f64(out, m);
  return out;
}

std::optional<DistributionSummary> DistributionSummary::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return std::nullopt;
  std::size_t pos = 1;
  switch (bytes[0]) {
    case kTagGaussian: {
      GaussianParams g;
      if (!get_f64(bytes, pos, g.mu)) return std::nullopt;
      if (!get_f64(bytes, pos, g.sigma)) return std::nullopt;
      if (pos != bytes.size()) return std::nullopt;
      if (!(g.sigma > 0.0)) return std::nullopt;
      return DistributionSummary(g);
    }
    case kTagHistogram: {
      HistogramParams h;
      std::uint32_t count = 0;
      if (!get_f64(bytes, pos, h.lo)) return std::nullopt;
      if (!get_f64(bytes, pos, h.hi)) return std::nullopt;
      if (!get_u32(bytes, pos, count)) return std::nullopt;
      if (count == 0 || !(h.lo < h.hi)) return std::nullopt;
      h.bin_masses.resize(count);
      for (auto& m : h.bin_masses) {
        if (!get_f64(bytes, pos, m)) return std::nullopt;
        if (m < 0.0) return std::nullopt;
      }
      if (pos != bytes.size()) return std::nullopt;
      double total = 0.0;
      for (double m : h.bin_masses) total += m;
      if (!(total > 0.0)) return std::nullopt;
      return DistributionSummary(std::move(h));
    }
    default:
      return std::nullopt;
  }
}

std::size_t DistributionSummary::wire_size() const {
  if (is_gaussian()) return 1 + 16;
  return 1 + 16 + 4 + 8 * histogram()->bin_masses.size();
}

std::string DistributionSummary::describe_text() const {
  std::ostringstream os;
  if (const auto* g = gaussian()) {
    os << "Summary[Gaussian mu=" << g->mu << " sigma=" << g->sigma << "]";
  } else {
    const auto* h = histogram();
    os << "Summary[Histogram lo=" << h->lo << " hi=" << h->hi
       << " bins=" << h->bin_masses.size() << "]";
  }
  return os.str();
}

}  // namespace tommy::stats
