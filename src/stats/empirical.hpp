// Histogram-backed empirical distribution. This is the representation
// clients ship to the sequencer when their clock-offset distribution has no
// parametric form (§3.3, §5): equal-width bins over a finite range with a
// density value per bin. The pdf is piecewise constant, the CDF piecewise
// linear, and the quantile is its exact inverse.
#pragma once

#include <span>
#include <vector>

#include "stats/distribution.hpp"

namespace tommy::stats {

class Empirical final : public Distribution {
 public:
  /// Builds from equal-width bins on [lo, hi] with the given non-negative
  /// per-bin masses (they are normalized to sum to 1). Requires at least
  /// one strictly positive mass.
  Empirical(double lo, double hi, std::vector<double> bin_masses);

  /// Builds a histogram from raw offset samples with `bin_count` bins that
  /// span [min(samples), max(samples)] (widened slightly so every sample
  /// falls strictly inside).
  [[nodiscard]] static Empirical from_samples(std::span<const double> samples,
                                              std::size_t bin_count);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return variance_; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] Support support() const override { return {lo_, hi_}; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return bin_width_; }
  [[nodiscard]] std::span<const double> bin_masses() const { return masses_; }

 private:
  void compute_moments();

  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> masses_;      // normalized: sums to 1
  std::vector<double> cumulative_;  // cumulative_[k] = mass of bins [0, k)
  double mean_{0.0};
  double variance_{0.0};
};

}  // namespace tommy::stats
