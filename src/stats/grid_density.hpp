// A probability density discretized on a uniform grid, with an attached
// cumulative function. This is the working representation inside the
// numeric preceding-probability path: arbitrary client distributions are
// sampled onto grids, convolved (FFT) into the Δθ density, and queried via
// the interpolated CDF.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/distribution.hpp"

namespace tommy::stats {

class GridDensity {
 public:
  /// Takes density samples `values` at points lo, lo+dx, ..., and
  /// normalizes them so the trapezoid integral is 1. Requires >= 2 points
  /// and positive total mass.
  GridDensity(double lo, double dx, std::vector<double> values);

  /// Samples `dist`'s pdf on `points` uniform points across its effective
  /// support (or a caller-provided range).
  [[nodiscard]] static GridDensity from_distribution(const Distribution& dist,
                                                     std::size_t points,
                                                     double tail_eps = 1e-9);
  [[nodiscard]] static GridDensity from_distribution_on(
      const Distribution& dist, double lo, double hi, std::size_t points);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const {
    return lo_ + dx_ * static_cast<double>(values_.size() - 1);
  }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Interpolated density at x (0 outside the grid).
  [[nodiscard]] double pdf(double x) const;

  /// Interpolated cumulative probability at x (clamped to [0, 1]).
  [[nodiscard]] double cdf(double x) const;

  /// Inverse CDF by binary search over the cumulative table.
  [[nodiscard]] double quantile(double p) const;

  /// P(X > x) with the same interpolation as cdf().
  [[nodiscard]] double tail_probability(double x) const;

  /// Inverse of tail_probability under the same piecewise-linear CDF:
  /// the x* with tail_probability(x*) = p, so that for p in (0, 1) and x
  /// on a strictly increasing CDF segment,
  ///   tail_probability(x) > p  ⟺  x < tail_quantile(p).
  /// This is what lets a preceding-probability threshold test collapse to
  /// a single cached gap comparison (the critical-gap reduction).
  [[nodiscard]] double tail_quantile(double p) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  /// Density of -X: grid flipped about zero.
  [[nodiscard]] GridDensity reflected() const;

 private:
  void build_cdf();

  double lo_;
  double dx_;
  std::vector<double> values_;  // density samples, trapezoid-normalized
  std::vector<double> cdf_;     // cdf_[k] = integral up to grid point k
};

}  // namespace tommy::stats
