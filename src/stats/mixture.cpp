#include "stats/mixture.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace tommy::stats {

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)) {
  TOMMY_EXPECTS(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    TOMMY_EXPECTS(c.weight > 0.0);
    TOMMY_EXPECTS(c.distribution != nullptr);
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

double Mixture::pdf(double x) const {
  double acc = 0.0;
  for (const auto& c : components_) acc += c.weight * c.distribution->pdf(x);
  return acc;
}

double Mixture::cdf(double x) const {
  double acc = 0.0;
  for (const auto& c : components_) acc += c.weight * c.distribution->cdf(x);
  return acc;
}

double Mixture::mean() const {
  double acc = 0.0;
  for (const auto& c : components_) acc += c.weight * c.distribution->mean();
  return acc;
}

double Mixture::variance() const {
  // Law of total variance: E[Var] + Var[E].
  const double m = mean();
  double acc = 0.0;
  for (const auto& c : components_) {
    const double cm = c.distribution->mean();
    acc += c.weight * (c.distribution->variance() + (cm - m) * (cm - m));
  }
  return acc;
}

double Mixture::sample(Rng& rng) const {
  double u = rng.next_double();
  for (const auto& c : components_) {
    if (u < c.weight) return c.distribution->sample(rng);
    u -= c.weight;
  }
  return components_.back().distribution->sample(rng);
}

Support Mixture::support() const {
  Support out{std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity()};
  for (const auto& c : components_) {
    const Support s = c.distribution->support();
    out.lo = std::min(out.lo, s.lo);
    out.hi = std::max(out.hi, s.hi);
  }
  return out;
}

DistributionPtr Mixture::clone() const {
  std::vector<Component> copy;
  copy.reserve(components_.size());
  for (const auto& c : components_) {
    copy.push_back({c.weight, c.distribution->clone()});
  }
  return std::make_unique<Mixture>(std::move(copy));
}

std::string Mixture::describe() const {
  std::ostringstream os;
  os << "Mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << ", ";
    os << components_[i].weight << "*" << components_[i].distribution->describe();
  }
  os << ")";
  return os.str();
}

Mixture Mixture::of(double w1, DistributionPtr d1, double w2,
                    DistributionPtr d2) {
  std::vector<Component> cs;
  cs.push_back({w1, std::move(d1)});
  cs.push_back({w2, std::move(d2)});
  return Mixture(std::move(cs));
}

}  // namespace tommy::stats
