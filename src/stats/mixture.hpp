// Finite mixture of component distributions. Mixtures are how we build the
// deliberately "badly shaped" offset densities that make the
// likely-happened-before relation intransitive (the non-transitive-dice
// construction the paper cites [18]), and also model bimodal clock error
// (e.g., a sync daemon that alternates between two paths).
#pragma once

#include <vector>

#include "stats/distribution.hpp"

namespace tommy::stats {

class Mixture final : public Distribution {
 public:
  struct Component {
    double weight;
    DistributionPtr distribution;
  };

  /// Requires at least one component; weights must be positive and are
  /// normalized to sum to one.
  explicit Mixture(std::vector<Component> components);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] double weight(std::size_t k) const {
    return components_[k].weight;
  }
  [[nodiscard]] const Distribution& component(std::size_t k) const {
    return *components_[k].distribution;
  }

  /// Convenience: two-component mixture.
  [[nodiscard]] static Mixture of(double w1, DistributionPtr d1, double w2,
                                  DistributionPtr d2);

 private:
  std::vector<Component> components_;
};

}  // namespace tommy::stats
