// A client's local clock: reads true (sequencer) time from the simulation
// and subtracts the current offset θ, so that local = true − θ and the
// paper's model T* = T + θ holds exactly. The clock records the offset of
// its most recent read so simulations can keep per-message ground truth.
#pragma once

#include "clock/offset_process.hpp"
#include "common/time.hpp"
#include "net/simulation.hpp"

namespace tommy::clock {

class LocalClock {
 public:
  LocalClock(const net::Simulation& sim, OffsetProcessPtr offset);

  /// Local reading at the simulation's current time.
  [[nodiscard]] TimePoint read();

  /// Local reading at an explicit true time (must be non-decreasing across
  /// calls for stateful offset processes).
  [[nodiscard]] TimePoint read_at(TimePoint true_time);

  /// θ used by the most recent read — ground truth for evaluation only;
  /// the modelled system never sees this.
  [[nodiscard]] double last_offset() const { return last_offset_; }

 private:
  const net::Simulation& sim_;
  OffsetProcessPtr offset_;
  double last_offset_{0.0};
};

}  // namespace tommy::clock
