#include "clock/local_clock.hpp"

#include "common/check.hpp"

namespace tommy::clock {

LocalClock::LocalClock(const net::Simulation& sim, OffsetProcessPtr offset)
    : sim_(sim), offset_(std::move(offset)) {
  TOMMY_EXPECTS(offset_ != nullptr);
}

TimePoint LocalClock::read() { return read_at(sim_.now()); }

TimePoint LocalClock::read_at(TimePoint true_time) {
  last_offset_ = offset_->offset_at(true_time);
  return true_time - Duration(last_offset_);
}

}  // namespace tommy::clock
