// Clock offset processes: how a client's clock error θ evolves over true
// time. The paper's evaluation (§4) uses the i.i.d. model (a fresh draw
// from f_θ at every message); the other processes model the realities §5
// worries about — drift, random-walk wander, and mean-reverting
// (temperature-like) excursions — and are exercised by the learning
// experiments.
//
// Sign convention (see DESIGN.md): θ converts a local stamp to sequencer
// time, T* = T + θ. A client clock therefore *reads* local = true − θ.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "stats/distribution.hpp"

namespace tommy::clock {

class OffsetProcess {
 public:
  virtual ~OffsetProcess() = default;

  /// Offset θ at the given true time. Must be called with non-decreasing
  /// times (stateful processes advance internally).
  [[nodiscard]] virtual double offset_at(TimePoint true_time) = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

using OffsetProcessPtr = std::unique_ptr<OffsetProcess>;

/// Fresh independent draw from a distribution at every read — the paper's
/// §4 generative model ("samples noise ε from the distribution").
class IidOffset final : public OffsetProcess {
 public:
  IidOffset(stats::DistributionPtr distribution, Rng rng);

  [[nodiscard]] double offset_at(TimePoint true_time) override;
  [[nodiscard]] std::string describe() const override;

 private:
  stats::DistributionPtr distribution_;
  Rng rng_;
};

/// Constant offset (a perfectly stable but mis-set clock).
class ConstantOffset final : public OffsetProcess {
 public:
  explicit ConstantOffset(double offset) : offset_(offset) {}

  [[nodiscard]] double offset_at(TimePoint) override { return offset_; }
  [[nodiscard]] std::string describe() const override;

 private:
  double offset_;
};

/// Linear drift: θ(t) = initial + rate · t, optionally plus i.i.d. noise.
class DriftOffset final : public OffsetProcess {
 public:
  /// `rate` is seconds of error per second of true time (e.g. 40e-6 for a
  /// 40 ppm oscillator); `noise` may be null.
  DriftOffset(double initial, double rate, stats::DistributionPtr noise,
              Rng rng);

  [[nodiscard]] double offset_at(TimePoint true_time) override;
  [[nodiscard]] std::string describe() const override;

 private:
  double initial_;
  double rate_;
  stats::DistributionPtr noise_;
  Rng rng_;
};

/// Brownian wander: independent Gaussian increments with standard
/// deviation `rate_per_sqrt_s · sqrt(dt)` between reads.
class RandomWalkOffset final : public OffsetProcess {
 public:
  RandomWalkOffset(double initial, double rate_per_sqrt_s, Rng rng);

  [[nodiscard]] double offset_at(TimePoint true_time) override;
  [[nodiscard]] std::string describe() const override;

 private:
  double value_;
  double rate_;
  TimePoint last_time_{TimePoint::epoch()};
  bool started_{false};
  Rng rng_;
};

/// Ornstein–Uhlenbeck: mean-reverting offset with stationary distribution
/// N(mean, stationary_sigma²) and reversion time constant tau. Models a
/// sync daemon continuously pulling the clock back while the environment
/// pushes it away.
class OuOffset final : public OffsetProcess {
 public:
  OuOffset(double mean, double stationary_sigma, Duration tau, Rng rng);

  [[nodiscard]] double offset_at(TimePoint true_time) override;
  [[nodiscard]] std::string describe() const override;

 private:
  double mean_;
  double sigma_;
  double tau_s_;
  double value_;
  TimePoint last_time_{TimePoint::epoch()};
  bool started_{false};
  Rng rng_;
};

}  // namespace tommy::clock
