// NTP-style clock synchronization probes over the simulated network.
//
// One probe gathers the classic four timestamps
//   t0 = client local send time        t1 = sequencer receive time
//   t2 = sequencer reply time          t3 = client local receive time
// and estimates the client's offset (in the T* = T + θ sense) as
//   θ̂ = ((t1 − t0) + (t2 − t3)) / 2,
// exact when the two one-way delays are equal and off by half the delay
// asymmetry otherwise. Accumulated θ̂ samples are what a client's offset
// distribution learner consumes (§5 "Learning Clock Offsets
// Distributions").
#pragma once

#include <functional>
#include <vector>

#include "clock/local_clock.hpp"
#include "common/time.hpp"
#include "net/link.hpp"
#include "net/simulation.hpp"

namespace tommy::clock {

struct ProbeSample {
  double offset_estimate;  // θ̂ in seconds
  Duration rtt;            // round-trip time observed by the client
  TimePoint completed_at;  // true time the probe finished
};

/// Drives a sequence of probes between one client clock and the sequencer
/// (whose clock is the simulation's true time). Probes are scheduled on
/// the simulation; run the simulation to completion (or past the last
/// probe) before reading the samples.
class SyncSession {
 public:
  /// `to_sequencer` and `to_client` model the two directions of the path.
  SyncSession(net::Simulation& sim, LocalClock& client_clock,
              net::DelayModel to_sequencer, net::DelayModel to_client);

  /// Schedules `count` probes starting at `start`, spaced by `interval`.
  void schedule_probes(TimePoint start, Duration interval, std::size_t count);

  [[nodiscard]] const std::vector<ProbeSample>& samples() const {
    return samples_;
  }

  /// Offset estimates only (what a learner ingests).
  [[nodiscard]] std::vector<double> offset_estimates() const;

 private:
  void launch_probe();

  net::Simulation& sim_;
  LocalClock& client_clock_;
  net::DelayModel to_sequencer_;
  net::DelayModel to_client_;
  std::vector<ProbeSample> samples_;
};

}  // namespace tommy::clock
