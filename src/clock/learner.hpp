// Offset-distribution learners: turn accumulated sync-probe offset
// estimates into the DistributionSummary a client announces to the
// sequencer (Figure 1, §3.3 "Clients learn their own f_θ").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace tommy::clock {

class OffsetLearner {
 public:
  virtual ~OffsetLearner() = default;

  /// Ingests one offset estimate (seconds).
  void add_sample(double offset);

  /// Ingests a batch of estimates.
  void add_samples(const std::vector<double>& offsets);

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Minimum number of samples summarize() needs.
  [[nodiscard]] virtual std::size_t min_samples() const { return 2; }

  /// Fits the learned distribution. Requires sample_count() >=
  /// min_samples().
  [[nodiscard]] virtual stats::DistributionSummary summarize() const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  std::vector<double> samples_;
};

/// Moment-matched Gaussian (the common fast path).
class GaussianLearner final : public OffsetLearner {
 public:
  [[nodiscard]] stats::DistributionSummary summarize() const override;
  [[nodiscard]] std::string describe() const override;
};

/// Median/MAD Gaussian — robust to occasional wild probes.
class RobustGaussianLearner final : public OffsetLearner {
 public:
  [[nodiscard]] stats::DistributionSummary summarize() const override;
  [[nodiscard]] std::string describe() const override;
};

/// Histogram (Freedman–Diaconis bins) — captures skew and long tails that
/// a Gaussian fit would erase (§3.3's motivation).
class HistogramLearner final : public OffsetLearner {
 public:
  explicit HistogramLearner(std::size_t min_bins = 8,
                            std::size_t max_bins = 128);

  [[nodiscard]] std::size_t min_samples() const override { return 8; }
  [[nodiscard]] stats::DistributionSummary summarize() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::size_t min_bins_;
  std::size_t max_bins_;
};

/// Gaussian-kernel density estimate, shipped as a histogram summary —
/// smooth with few samples, no binning artifacts; the right choice early
/// in a client's life before the histogram learner has data.
class KdeLearner final : public OffsetLearner {
 public:
  /// `bandwidth <= 0` selects Silverman's rule; `summary_bins` is the
  /// wire-format resolution.
  explicit KdeLearner(double bandwidth = 0.0, std::size_t summary_bins = 64);

  [[nodiscard]] std::size_t min_samples() const override { return 4; }
  [[nodiscard]] stats::DistributionSummary summarize() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double bandwidth_;
  std::size_t summary_bins_;
};

using OffsetLearnerPtr = std::unique_ptr<OffsetLearner>;

}  // namespace tommy::clock
