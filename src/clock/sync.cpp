#include "clock/sync.hpp"

#include "common/check.hpp"

namespace tommy::clock {

SyncSession::SyncSession(net::Simulation& sim, LocalClock& client_clock,
                         net::DelayModel to_sequencer,
                         net::DelayModel to_client)
    : sim_(sim),
      client_clock_(client_clock),
      to_sequencer_(std::move(to_sequencer)),
      to_client_(std::move(to_client)) {}

void SyncSession::schedule_probes(TimePoint start, Duration interval,
                                  std::size_t count) {
  TOMMY_EXPECTS(start >= sim_.now());
  TOMMY_EXPECTS(interval > Duration::zero() || count <= 1);
  for (std::size_t k = 0; k < count; ++k) {
    sim_.schedule_at(start + interval * static_cast<double>(k),
                     [this] { launch_probe(); });
  }
}

void SyncSession::launch_probe() {
  // t0: client stamps its local clock and the request departs.
  const TimePoint t0 = client_clock_.read();
  const TimePoint send_true = sim_.now();
  const Duration d1 = to_sequencer_.sample();

  sim_.schedule_after(d1, [this, t0, send_true] {
    // t1/t2: the sequencer's clock is the simulation's true time; we model
    // zero processing time, so t2 == t1.
    const TimePoint t1 = sim_.now();
    const TimePoint t2 = t1;
    const Duration d2 = to_client_.sample();

    sim_.schedule_after(d2, [this, t0, send_true, t1, t2] {
      const TimePoint t3 = client_clock_.read();
      const double offset_estimate =
          0.5 * ((t1 - t0).seconds() + (t2 - t3).seconds());
      const Duration rtt = (sim_.now() - send_true);
      samples_.push_back(ProbeSample{offset_estimate, rtt, sim_.now()});
    });
  });
}

std::vector<double> SyncSession::offset_estimates() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const ProbeSample& s : samples_) out.push_back(s.offset_estimate);
  return out;
}

}  // namespace tommy::clock
