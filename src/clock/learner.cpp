#include "clock/learner.hpp"

#include <sstream>

#include "common/check.hpp"
#include "stats/estimators.hpp"
#include "stats/kde.hpp"

namespace tommy::clock {

void OffsetLearner::add_sample(double offset) { samples_.push_back(offset); }

void OffsetLearner::add_samples(const std::vector<double>& offsets) {
  samples_.insert(samples_.end(), offsets.begin(), offsets.end());
}

stats::DistributionSummary GaussianLearner::summarize() const {
  TOMMY_EXPECTS(sample_count() >= min_samples());
  const stats::Gaussian fit = stats::fit_gaussian(samples_);
  return stats::DistributionSummary(
      stats::GaussianParams{fit.mu(), fit.sigma()});
}

std::string GaussianLearner::describe() const {
  std::ostringstream os;
  os << "GaussianLearner(n=" << sample_count() << ")";
  return os.str();
}

stats::DistributionSummary RobustGaussianLearner::summarize() const {
  TOMMY_EXPECTS(sample_count() >= min_samples());
  const stats::Gaussian fit = stats::fit_gaussian_robust(samples_);
  return stats::DistributionSummary(
      stats::GaussianParams{fit.mu(), fit.sigma()});
}

std::string RobustGaussianLearner::describe() const {
  std::ostringstream os;
  os << "RobustGaussianLearner(n=" << sample_count() << ")";
  return os.str();
}

HistogramLearner::HistogramLearner(std::size_t min_bins, std::size_t max_bins)
    : min_bins_(min_bins), max_bins_(max_bins) {
  TOMMY_EXPECTS(min_bins >= 1 && min_bins <= max_bins);
}

stats::DistributionSummary HistogramLearner::summarize() const {
  TOMMY_EXPECTS(sample_count() >= min_samples());
  const stats::Empirical fit =
      stats::fit_histogram_auto(samples_, min_bins_, max_bins_);
  std::vector<double> masses(fit.bin_masses().begin(),
                             fit.bin_masses().end());
  return stats::DistributionSummary(
      stats::HistogramParams{fit.lo(), fit.hi(), std::move(masses)});
}

std::string HistogramLearner::describe() const {
  std::ostringstream os;
  os << "HistogramLearner(n=" << sample_count() << ")";
  return os.str();
}

KdeLearner::KdeLearner(double bandwidth, std::size_t summary_bins)
    : bandwidth_(bandwidth), summary_bins_(summary_bins) {
  TOMMY_EXPECTS(summary_bins >= 2);
}

stats::DistributionSummary KdeLearner::summarize() const {
  TOMMY_EXPECTS(sample_count() >= min_samples());
  const stats::KernelDensity kde(samples_, bandwidth_);
  return stats::DistributionSummary::describe(kde, summary_bins_);
}

std::string KdeLearner::describe() const {
  std::ostringstream os;
  os << "KdeLearner(n=" << sample_count() << ")";
  return os.str();
}

}  // namespace tommy::clock
