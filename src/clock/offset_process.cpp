#include "clock/offset_process.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace tommy::clock {

IidOffset::IidOffset(stats::DistributionPtr distribution, Rng rng)
    : distribution_(std::move(distribution)), rng_(rng) {
  TOMMY_EXPECTS(distribution_ != nullptr);
}

double IidOffset::offset_at(TimePoint) { return distribution_->sample(rng_); }

std::string IidOffset::describe() const {
  return "IidOffset(" + distribution_->describe() + ")";
}

std::string ConstantOffset::describe() const {
  std::ostringstream os;
  os << "ConstantOffset(" << offset_ << ")";
  return os.str();
}

DriftOffset::DriftOffset(double initial, double rate,
                         stats::DistributionPtr noise, Rng rng)
    : initial_(initial), rate_(rate), noise_(std::move(noise)), rng_(rng) {}

double DriftOffset::offset_at(TimePoint true_time) {
  double value = initial_ + rate_ * true_time.seconds();
  if (noise_ != nullptr) value += noise_->sample(rng_);
  return value;
}

std::string DriftOffset::describe() const {
  std::ostringstream os;
  os << "DriftOffset(initial=" << initial_ << ", rate=" << rate_ << ")";
  return os.str();
}

RandomWalkOffset::RandomWalkOffset(double initial, double rate_per_sqrt_s,
                                   Rng rng)
    : value_(initial), rate_(rate_per_sqrt_s), rng_(rng) {
  TOMMY_EXPECTS(rate_per_sqrt_s >= 0.0);
}

double RandomWalkOffset::offset_at(TimePoint true_time) {
  if (!started_) {
    started_ = true;
    last_time_ = true_time;
    return value_;
  }
  TOMMY_EXPECTS(true_time >= last_time_);
  const double dt = (true_time - last_time_).seconds();
  if (dt > 0.0) {
    value_ += rng_.normal(0.0, rate_ * std::sqrt(dt));
    last_time_ = true_time;
  }
  return value_;
}

std::string RandomWalkOffset::describe() const {
  std::ostringstream os;
  os << "RandomWalkOffset(rate=" << rate_ << "/sqrt(s))";
  return os.str();
}

OuOffset::OuOffset(double mean, double stationary_sigma, Duration tau, Rng rng)
    : mean_(mean),
      sigma_(stationary_sigma),
      tau_s_(tau.seconds()),
      value_(mean),
      rng_(rng) {
  TOMMY_EXPECTS(stationary_sigma > 0.0);
  TOMMY_EXPECTS(tau.seconds() > 0.0);
}

double OuOffset::offset_at(TimePoint true_time) {
  if (!started_) {
    started_ = true;
    last_time_ = true_time;
    // Start from the stationary distribution.
    value_ = rng_.normal(mean_, sigma_);
    return value_;
  }
  TOMMY_EXPECTS(true_time >= last_time_);
  const double dt = (true_time - last_time_).seconds();
  if (dt > 0.0) {
    // Exact OU transition density.
    const double decay = std::exp(-dt / tau_s_);
    const double step_sigma = sigma_ * std::sqrt(1.0 - decay * decay);
    value_ = mean_ + (value_ - mean_) * decay + rng_.normal(0.0, step_sigma);
    last_time_ = true_time;
  }
  return value_;
}

std::string OuOffset::describe() const {
  std::ostringstream os;
  os << "OuOffset(mean=" << mean_ << ", sigma=" << sigma_ << ", tau=" << tau_s_
     << "s)";
  return os.str();
}

}  // namespace tommy::clock
