// Byzantine clients (§5): in an auction-app, a client that back-dates its
// timestamps wins orderings it should lose. The ByzantineGuard uses the
// same statistical machinery as the sequencer: the residual
// arrival − stamp = θ + delay must be plausible under the client's own
// announced offset distribution. This demo runs honest traffic plus one
// cheater and prints the per-client suspicion scores.
//
// Build & run:  ./build/examples/byzantine_audit
#include <cstdio>

#include "core/byzantine.hpp"
#include "stats/gaussian.hpp"

int main() {
  using namespace tommy;
  using namespace tommy::literals;

  constexpr std::uint32_t kClients = 6;
  constexpr std::uint32_t kCheater = 3;
  constexpr double kAdvantage = 5e-3;  // cheater back-dates by 5 ms

  core::ClientRegistry registry;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    registry.announce(ClientId(c),
                      std::make_unique<stats::Gaussian>(0.0, 200e-6));
  }

  core::ByzantineConfig config;
  config.epsilon = 1e-4;
  config.max_plausible_delay = 2_ms;
  core::ByzantineGuard guard(registry, config);

  Rng rng(13);
  const stats::Gaussian theta(0.0, 200e-6);
  std::uint64_t next_id = 0;
  for (int round = 0; round < 500; ++round) {
    const double true_time = 1.0 + 1e-3 * round;
    for (std::uint32_t c = 0; c < kClients; ++c) {
      const double offset = theta.sample(rng);
      const double delay = rng.uniform(50e-6, 500e-6);
      double stamp = true_time - offset;
      if (c == kCheater && rng.bernoulli(0.3)) {
        stamp -= kAdvantage;  // claim the bid was placed 5 ms earlier
      }
      const core::Message m{MessageId(next_id++), ClientId(c),
                            TimePoint(stamp),
                            TimePoint(true_time + delay)};
      (void)guard.inspect(m);
    }
  }

  std::printf("per-client audit after 500 rounds:\n");
  std::printf("%-8s %10s %10s %12s\n", "client", "inspected", "flagged",
              "suspicion");
  for (std::uint32_t c = 0; c < kClients; ++c) {
    std::printf("%-8u %10llu %10llu %11.1f%%\n", c,
                static_cast<unsigned long long>(
                    guard.inspected_count(ClientId(c))),
                static_cast<unsigned long long>(
                    guard.flagged_count(ClientId(c))),
                100.0 * guard.suspicion_score(ClientId(c)));
  }

  const auto suspects = guard.suspects(0.05, 100);
  std::printf("\nsuspects (score >= 5%%, >= 100 inspected):");
  for (ClientId c : suspects) std::printf(" client %u", c.value());
  std::printf("\n");
  return 0;
}
