// Wire-trace record & replay against a real listening server — the
// deployment-shaped workflow on top of the frame protocol:
//
//   ./build/example_wire_replay                       # self-contained demo
//   ./build/example_wire_replay record t.trace --clients 3 --messages 12
//   ./build/example_wire_replay serve --unix /tmp/s.sock --clients 3
//        --expect-submits 36 [--threads] [--shards 2] [--json out.json]
//        [--transport threads|epoll] [--pollers M]
//   ./build/example_wire_replay replay t.trace --unix /tmp/s.sock --speed 2
//   ./build/example_wire_replay blast --unix /tmp/s.sock --client 0
//        --messages 10000 [--connections N]
//
// The demo records a randomized multi-client workload (reconnecting
// segments included) to a trace file, replays it through a live
// Unix-domain FrameServer, and checks the served emission stream against
// a direct in-process drive of the same workload — the replay round-trip
// equivalence, at example scale. `serve` + `blast` are the two halves of
// scripts/bench_multiproc.sh (N client processes vs one server).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/acceptor.hpp"
#include "sim/wire_replay.hpp"
#include "stats/gaussian.hpp"
#include "stats/summary.hpp"

namespace {

using namespace tommy;

constexpr Duration kWireDelay = Duration(0.5e-3);

stats::DistributionSummary summary_for(std::uint32_t client) {
  return stats::DistributionSummary(
      stats::GaussianParams{1e-4 * client, 1e-3});
}

core::ClientRegistry make_registry(std::uint32_t clients) {
  core::ClientRegistry registry;
  for (std::uint32_t c = 0; c < clients; ++c) {
    registry.announce(ClientId(c), summary_for(c));
  }
  return registry;
}

std::vector<ClientId> ids(std::uint32_t clients) {
  std::vector<ClientId> out;
  for (std::uint32_t c = 0; c < clients; ++c) out.push_back(ClientId(c));
  return out;
}

/// Deterministic arrival clock (stamp + fixed delay): what makes a
/// replayed run bit-identical to the recorded one at any speed.
net::FrontendConfig modeled_frontend() {
  net::FrontendConfig config;
  config.arrival_clock = [](const net::WireMessage& m) {
    if (const auto* msg = std::get_if<net::TimestampedMessage>(&m)) {
      return msg->local_stamp + kWireDelay;
    }
    return std::get<net::Heartbeat>(m).local_stamp + kWireDelay;
  };
  return config;
}

struct WorkloadEvent {
  bool is_heartbeat;
  std::uint64_t id;
  double stamp;
};

std::vector<std::vector<WorkloadEvent>> make_workload(std::uint32_t clients,
                                                      int per_client,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<WorkloadEvent>> events(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    Rng client_rng = rng.split();
    double stamp = 1.0 + 1e-4 * c;
    for (int k = 0; k < per_client; ++k) {
      stamp += client_rng.uniform(0.5e-3, 3e-3);
      events[c].push_back(WorkloadEvent{
          false, 1000ULL * c + static_cast<std::uint64_t>(k), stamp});
      if (k % 5 == 4) {
        events[c].push_back(WorkloadEvent{true, 0, stamp + 0.1e-3});
      }
    }
    events[c].push_back(WorkloadEvent{true, 0, stamp + 50e-3});
  }
  return events;
}

std::vector<std::uint8_t> event_frame(std::uint32_t client,
                                      const WorkloadEvent& event) {
  if (event.is_heartbeat) {
    return net::encode_frame(net::WireMessage(
        net::Heartbeat{ClientId(client), TimePoint(event.stamp)}));
  }
  return net::encode_frame(net::WireMessage(net::TimestampedMessage{
      ClientId(client), MessageId(event.id), TimePoint(event.stamp)}));
}

sim::WireTrace record_trace(
    const std::vector<std::vector<WorkloadEvent>>& workload, int segments) {
  sim::WireTraceRecorder recorder;
  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    const auto& events = workload[c];
    const std::size_t per_segment =
        (events.size() + static_cast<std::size_t>(segments) - 1)
        / static_cast<std::size_t>(segments);
    std::size_t next = 0;
    for (int s = 0; s < segments && next < events.size(); ++s) {
      recorder.connect(c, events[next].stamp - 1e-6);
      recorder.send(
          c, events[next].stamp - 1e-6,
          net::encode_frame(net::WireMessage(net::DistributionAnnouncement{
              ClientId(c), summary_for(c)})));
      const std::size_t end = std::min(events.size(), next + per_segment);
      for (; next < end; ++next) {
        recorder.send(c, events[next].stamp, event_frame(c, events[next]));
      }
      recorder.disconnect(c, events[next - 1].stamp + 1e-6);
    }
  }
  return recorder.take();
}

/// Ordered digest of a service's full drain (flush far in the future).
std::vector<std::uint64_t> drain_digest(core::FairOrderingService& service) {
  std::vector<std::uint64_t> digest;
  service.flush(TimePoint(1e9),
                [&digest](core::EmissionRecord&& record, std::uint32_t shard) {
                  digest.push_back(record.batch.rank);
                  digest.push_back(shard);
                  for (const core::Message& m : record.batch.messages) {
                    digest.push_back(m.id.value());
                  }
                });
  return digest;
}

// ── flag helpers ────────────────────────────────────────────────────────

struct Args {
  std::vector<std::string> positional;
  std::string unix_path;
  int tcp_port{0};
  bool tcp_set{false};
  std::uint32_t clients{3};
  int messages{12};
  int segments{2};
  std::uint64_t seed{42};
  double speed{0.0};
  std::uint64_t expect_submits{0};
  std::uint32_t client{0};
  bool threads{false};
  std::uint32_t shards{1};
  std::string json;
  /// serve: reader model — "threads" (one blocking reader per
  /// connection) or "epoll" (M-poller event loop).
  std::string transport{"threads"};
  std::uint32_t pollers{2};
  /// blast: sockets driven round-robin by ONE process (--client is the
  /// base id; connection i announces client base+i). Multiplying
  /// connections per process is what makes C=1000 benchable without a
  /// thousand forks.
  std::uint32_t connections{1};
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--threads") {
      args.threads = true;
    } else if (flag[0] != '-') {
      args.positional.push_back(flag);
    } else {
      const char* value = next();
      if (value == nullptr) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return false;
      }
      if (flag == "--unix") args.unix_path = value;
      else if (flag == "--tcp") {
        args.tcp_port = std::atoi(value);
        args.tcp_set = true;
      }
      else if (flag == "--clients") args.clients = static_cast<std::uint32_t>(std::atoi(value));
      else if (flag == "--messages") args.messages = std::atoi(value);
      else if (flag == "--segments") args.segments = std::atoi(value);
      else if (flag == "--seed") args.seed = static_cast<std::uint64_t>(std::atoll(value));
      else if (flag == "--speed") args.speed = std::atof(value);
      else if (flag == "--expect-submits") args.expect_submits = static_cast<std::uint64_t>(std::atoll(value));
      else if (flag == "--client") args.client = static_cast<std::uint32_t>(std::atoi(value));
      else if (flag == "--shards") args.shards = static_cast<std::uint32_t>(std::atoi(value));
      else if (flag == "--json") args.json = value;
      else if (flag == "--transport") args.transport = value;
      else if (flag == "--pollers") args.pollers = static_cast<std::uint32_t>(std::atoi(value));
      else if (flag == "--connections") args.connections = static_cast<std::uint32_t>(std::atoi(value));
      else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return false;
      }
    }
  }
  return true;
}

int run_record(const Args& args, const std::string& path) {
  const auto workload =
      make_workload(args.clients, args.messages, args.seed);
  const auto trace = record_trace(workload, args.segments);
  if (!trace.save(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("recorded %zu events (%llu bytes over %u connections) to %s\n",
              trace.events.size(),
              static_cast<unsigned long long>(trace.total_bytes()),
              trace.connection_count(), path.c_str());
  return 0;
}

int run_replay(const Args& args, const std::string& path) {
  const auto trace = sim::WireTrace::load(path);
  if (!trace) {
    std::fprintf(stderr, "cannot load %s\n", path.c_str());
    return 1;
  }
  sim::ReplayTarget target;
  target.unix_path = args.unix_path;
  target.tcp_port = static_cast<std::uint16_t>(args.tcp_port);
  sim::ReplayOptions options;
  options.speed = args.speed;
  const auto stats = sim::replay(*trace, target, options);
  if (!stats) {
    std::fprintf(stderr, "replay failed (server down mid-run?)\n");
    return 1;
  }
  std::printf(
      "replayed %llu frames / %llu bytes over %llu connections in %.3f s\n",
      static_cast<unsigned long long>(stats->frames),
      static_cast<unsigned long long>(stats->bytes),
      static_cast<unsigned long long>(stats->connections),
      stats->wall_seconds);
  return 0;
}

int run_serve(const Args& args) {
  auto registry = make_registry(args.clients);
  core::ServiceConfig config;
  config.with_p_safe(0.99).with_shards(args.shards);
  if (args.threads) config.with_worker_threads();
  core::FairOrderingService service(registry, ids(args.clients), config);
  // Real wall-clock arrivals: serve mode is the load-bench half, not the
  // equivalence half (replay against a modeled clock is the demo's job).
  net::ServerConfig server_config;
  const bool epoll = args.transport == "epoll";
  if (epoll) {
    server_config.frontend.transport = net::TransportMode::kEventLoop;
    server_config.frontend.poller_threads = args.pollers;
  } else if (args.transport != "threads") {
    std::fprintf(stderr, "unknown --transport '%s' (threads|epoll)\n",
                 args.transport.c_str());
    return 2;
  }
  net::FrameServer server(registry, service, server_config);
  bool listening = false;
  if (!args.unix_path.empty()) {
    listening = server.listen_unix(args.unix_path);
  } else {
    listening = server.listen_tcp(static_cast<std::uint16_t>(args.tcp_port));
  }
  if (!listening) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  if (args.unix_path.empty()) {
    std::printf("listening on 127.0.0.1:%u\n", server.port());
  } else {
    std::printf("listening on %s\n", args.unix_path.c_str());
  }
  std::fflush(stdout);

  // Serve until the expected submit volume arrived (then flush), timing
  // from the first accepted connection.
  if (!server.wait_for_accepted(1, 60 * 1000)) {
    std::fprintf(stderr, "no client connected within 60 s\n");
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(120);
  std::uint64_t submits = 0;
  while ((submits = server.frontend().totals().submits_in)
         < args.expect_submits) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr,
                   "timed out at %llu/%llu submits (client died?)\n",
                   static_cast<unsigned long long>(submits),
                   static_cast<unsigned long long>(args.expect_submits));
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.frontend().join_readers();
  std::size_t batches = 0;
  std::uint64_t messages = 0;
  service.flush(TimePoint(1e9), [&](core::EmissionRecord&& record,
                                    std::uint32_t) {
    batches++;
    messages += record.batch.messages.size();
  });
  const auto totals = server.frontend().totals();
  const double items_per_second =
      static_cast<double>(submits) / ingest_seconds;
  std::printf(
      "ingested %llu submits (%llu bytes, %llu connections) in %.3f s "
      "= %.0f msg/s; flushed %zu batches / %llu messages\n",
      static_cast<unsigned long long>(submits),
      static_cast<unsigned long long>(totals.bytes_in),
      static_cast<unsigned long long>(totals.accepted), ingest_seconds,
      items_per_second, batches, static_cast<unsigned long long>(messages));
  if (!args.json.empty()) {
    std::FILE* out = std::fopen(args.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json.c_str());
      return 1;
    }
    // google-benchmark-shaped entry so bench_multiproc.sh can merge it
    // into BENCH_throughput.json and CI can track the family. The epoll
    // transport reports its own family (same measurement, different
    // reader model), so both columns are tracked side by side.
    const char* family =
        epoll ? "MP_EpollServerIngest" : "MP_UnixServerIngest";
    std::fprintf(
        out,
        "{\n"
        "  \"context\": {\"hardware_threads\": %u, \"workers\": %d,"
        " \"shards\": %u, \"pollers\": %u},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"%s/clients:%u/messages:%llu\",\n"
        "     \"run_name\": \"%s/clients:%u/messages:%llu\","
        " \"run_type\": \"iteration\", \"repetitions\": 1,"
        " \"repetition_index\": 0, \"threads\": 1, \"iterations\": 1,\n"
        "     \"real_time\": %.6f, \"cpu_time\": %.6f,"
        " \"time_unit\": \"ms\", \"items_per_second\": %.1f,"
        " \"bytes_per_second\": %.1f}\n"
        "  ]\n"
        "}\n",
        std::thread::hardware_concurrency(), args.threads ? 1 : 0,
        args.shards, epoll ? args.pollers : 0, family, args.clients,
        static_cast<unsigned long long>(args.expect_submits), family,
        args.clients, static_cast<unsigned long long>(args.expect_submits),
        ingest_seconds * 1e3, ingest_seconds * 1e3, items_per_second,
        static_cast<double>(totals.bytes_in) / ingest_seconds);
    std::fclose(out);
  }
  server.stop();
  return 0;
}

int run_blast(const Args& args) {
  // One process, N sockets, driven round-robin (N = --connections;
  // connection i announces client --client + i). The per-connection
  // protocol is unchanged — N=1 is the historical single-client blast —
  // but one driver can now model C=1000 concurrent clients without a
  // thousand processes.
  const std::uint32_t n = std::max<std::uint32_t>(1, args.connections);
  net::Endpoint endpoint;
  endpoint.unix_path = args.unix_path;
  endpoint.tcp_port = static_cast<std::uint16_t>(args.tcp_port);
  // The server may still be binding: retry with a generous budget under
  // the shared backoff policy (flat 2 ms, same schedule every client
  // driver uses).
  net::RetryPolicy retry;
  retry.attempts = 2500;

  std::vector<std::shared_ptr<net::ByteStream>> wires(n);
  std::vector<std::vector<std::uint8_t>> buffers(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t client = args.client + i;
    wires[i] = net::dial(endpoint, retry);
    if (wires[i] == nullptr) {
      std::fprintf(stderr, "client %u: cannot connect\n", client);
      return 1;
    }
    if (!wires[i]->write_all(
            net::encode_frame(net::WireMessage(net::DistributionAnnouncement{
                ClientId(client), summary_for(client)})))) {
      std::fprintf(stderr, "client %u: handshake failed\n", client);
      return 1;
    }
  }

  // Frames are batched into chunky writes: a blast client measures the
  // server, not per-write syscall overhead. Round-robin across the
  // sockets so the server sees all connections concurrently hot.
  bool ok = true;
  double stamp = 1.0;
  for (int k = 0; ok && k < args.messages; ++k) {
    stamp += 1e-6;
    for (std::uint32_t i = 0; ok && i < n; ++i) {
      const std::uint32_t client = args.client + i;
      const auto frame = event_frame(
          client,
          WorkloadEvent{false,
                        1000000ULL * client + static_cast<std::uint64_t>(k),
                        stamp});
      buffers[i].insert(buffers[i].end(), frame.begin(), frame.end());
      if (buffers[i].size() >= 32 * 1024 || k + 1 == args.messages) {
        ok = wires[i]->write_all(buffers[i]);
        buffers[i].clear();
      }
    }
  }
  for (std::uint32_t i = 0; ok && i < n; ++i) {
    ok = wires[i]->write_all(net::encode_frame(net::WireMessage(
        net::Heartbeat{ClientId(args.client + i), TimePoint(stamp + 1.0)})));
    wires[i]->close_write();
  }
  if (!ok) {
    std::fprintf(stderr, "blast (base client %u, %u connections): write "
                 "failed\n",
                 args.client, n);
    return 1;
  }
  return 0;
}

int run_demo(const Args& args) {
  std::printf("=== wire replay demo: record -> serve -> replay ===\n\n");
  const std::string trace_path =
      "/tmp/tommy_replay_demo_" + std::to_string(::getpid()) + ".trace";
  const std::string socket_path =
      "/tmp/tommy_replay_demo_" + std::to_string(::getpid()) + ".sock";

  // 1. Record: 3 clients, reconnecting once mid-stream.
  const auto workload = make_workload(args.clients, args.messages, args.seed);
  const auto trace = record_trace(workload, args.segments);
  if (!trace.save(trace_path)) return 1;
  std::printf("recorded %zu events (%u logical connections, %d segments "
              "each) to %s\n",
              trace.events.size(), trace.connection_count(), args.segments,
              trace_path.c_str());

  // 2. The reference: the same workload driven straight into sessions.
  core::ServiceConfig config;
  config.with_p_safe(0.99);
  std::vector<std::uint64_t> direct_digest;
  {
    auto registry = make_registry(args.clients);
    core::FairOrderingService service(registry, ids(args.clients), config);
    for (std::uint32_t c = 0; c < args.clients; ++c) {
      auto session = service.open_session(ClientId(c));
      // The relaxed batch path: per-client sequences interleave across
      // sessions by construction (exactly like per-connection readers).
      std::vector<core::Submission> batch;
      for (const WorkloadEvent& event : workload[c]) {
        if (event.is_heartbeat) {
          session.submit_batch(std::span<const core::Submission>(batch));
          batch.clear();
          session.heartbeat(TimePoint(event.stamp),
                            TimePoint(event.stamp) + kWireDelay);
        } else {
          batch.push_back(core::Submission{TimePoint(event.stamp),
                                           MessageId(event.id),
                                           TimePoint(event.stamp) + kWireDelay});
        }
      }
      session.submit_batch(std::span<const core::Submission>(batch));
    }
    direct_digest = drain_digest(service);
  }

  // 3. Serve + replay (twice: wire speed, then paced 100x trace time).
  for (const double speed : {0.0, 100.0}) {
    auto registry = make_registry(args.clients);
    core::FairOrderingService service(registry, ids(args.clients), config);
    net::ServerConfig server_config;
    server_config.frontend = modeled_frontend();
    net::FrameServer server(registry, service, server_config);
    if (!server.listen_unix(socket_path)) return 1;

    sim::ReplayOptions options;
    options.speed = speed;
    const auto loaded = sim::WireTrace::load(trace_path);
    if (!loaded) return 1;
    const auto stats =
        sim::replay(*loaded, sim::ReplayTarget{socket_path, 0}, options);
    if (!stats) return 1;
    if (!server.wait_for_accepted(stats->connections, 10000)) return 1;
    server.frontend().join_readers();
    const auto replay_digest = drain_digest(service);
    std::printf(
        "replay at speed %5.1f: %llu frames in %.3f s over %llu "
        "connections -> emissions %s the direct drive\n",
        speed, static_cast<unsigned long long>(stats->frames),
        stats->wall_seconds,
        static_cast<unsigned long long>(stats->connections),
        replay_digest == direct_digest ? "BIT-IDENTICAL to"
                                       : "DIVERGED from");
    server.stop();
    if (replay_digest != direct_digest) return 1;
  }
  std::remove(trace_path.c_str());
  std::printf(
      "\nthe same trace file can drive scripts/bench_multiproc.sh-style "
      "load: serve + N blast processes.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (!parse_args(argc, argv, args)) return 2;

  if (mode == "demo") return run_demo(args);
  if (mode == "record") {
    if (args.positional.empty()) {
      std::fprintf(stderr, "usage: %s record <trace-file> [flags]\n",
                   argv[0]);
      return 2;
    }
    return run_record(args, args.positional[0]);
  }
  if (mode == "replay") {
    if (args.positional.empty()
        || (args.unix_path.empty() && args.tcp_port == 0)) {
      std::fprintf(stderr,
                   "usage: %s replay <trace-file> (--unix P|--tcp PORT) "
                   "[--speed S]\n",
                   argv[0]);
      return 2;
    }
    return run_replay(args, args.positional[0]);
  }
  if (mode == "serve") {
    // --tcp 0 is valid here (ephemeral port, printed after bind).
    if (args.unix_path.empty() && !args.tcp_set) {
      std::fprintf(stderr, "usage: %s serve (--unix P|--tcp PORT) [flags]\n",
                   argv[0]);
      return 2;
    }
    return run_serve(args);
  }
  if (mode == "blast") {
    if (args.unix_path.empty() && args.tcp_port == 0) {
      std::fprintf(stderr,
                   "usage: %s blast (--unix P|--tcp PORT) --client I "
                   "--messages M\n",
                   argv[0]);
      return 2;
    }
    return run_blast(args);
  }
  std::fprintf(stderr,
               "unknown mode '%s' (demo|record|replay|serve|blast)\n",
               mode.c_str());
  return 2;
}
