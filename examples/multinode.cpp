// Multi-node fair ordering: shard nodes + safe-time gossip + merge tier.
//
//   ./build/example_multinode                       # self-contained demo
//   ./build/example_multinode failover              # replicated merge demo
//   ./build/example_multinode shard --node 0 --nodes 2 --clients 6
//        --messages 5000 --uplink-prefix /tmp/mn_up [--wait-subscribers W]
//   ./build/example_multinode merge --nodes 2 --clients 6 --messages 5000
//        --uplink-prefix /tmp/mn_up [--json out.json] [--standbys K]
//        [--downlink PATH]
//   ./build/example_multinode router --listen /tmp/mn_router.sock
//        --nodes 2 --ingest-prefix /tmp/mn_in
//
// The demo stands the whole topology up in one process — N shard nodes,
// a router, a merge node, and real client connections over Unix sockets
// — and checks the merged release stream bit for bit against the
// single-process DrainPolicy::kGlobalMerge oracle over the same
// workload. The failover demo replicates the merge tier (primary + hot
// standby + MergeSubscriber), kills the primary mid-schedule, and checks
// that the subscriber's spliced stream still matches the oracle bit for
// bit. `shard` + `merge` are the two halves of
// scripts/bench_multinode.sh (N shard processes streaming uplinks into
// one merge process, which reports MN_MergeIngest throughput;
// --wait-subscribers / --standbys measure the cost of a standby replica
// on the same uplinks).
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dist/merge_node.hpp"
#include "dist/merge_subscriber.hpp"
#include "dist/shard_node.hpp"
#include "dist/topology.hpp"
#include "net/acceptor.hpp"
#include "stats/gaussian.hpp"
#include "stats/summary.hpp"

namespace {

using namespace tommy;

constexpr Duration kWireDelay = Duration(0.5e-3);

stats::DistributionSummary summary_for(std::uint32_t client) {
  return stats::DistributionSummary(
      stats::GaussianParams{1e-4 * client, 1e-3});
}

core::ClientRegistry make_registry(std::uint32_t clients) {
  core::ClientRegistry registry;
  for (std::uint32_t c = 0; c < clients; ++c) {
    registry.announce(ClientId(c), summary_for(c));
  }
  return registry;
}

std::vector<ClientId> ids(std::uint32_t clients) {
  std::vector<ClientId> out;
  for (std::uint32_t c = 0; c < clients; ++c) out.push_back(ClientId(c));
  return out;
}

/// Deterministic arrival clock (stamp + fixed delay): every process in
/// the deployment derives the same arrival for the same frame, which is
/// what makes the distributed run comparable to the oracle.
net::FrontendConfig modeled_frontend() {
  net::FrontendConfig config;
  config.arrival_clock = [](const net::WireMessage& m) {
    if (const auto* msg = std::get_if<net::TimestampedMessage>(&m)) {
      return msg->local_stamp + kWireDelay;
    }
    return std::get<net::Heartbeat>(m).local_stamp + kWireDelay;
  };
  return config;
}

struct WorkloadEvent {
  bool is_heartbeat;
  std::uint64_t id;
  double stamp;
};

/// Pure function of (clients, per_client, seed): every process that
/// computes the workload computes the same one.
std::vector<std::vector<WorkloadEvent>> make_workload(std::uint32_t clients,
                                                      int per_client,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<WorkloadEvent>> events(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    Rng client_rng = rng.split();
    double stamp = 1.0 + 1e-4 * c;
    for (int k = 0; k < per_client; ++k) {
      stamp += client_rng.uniform(0.5e-3, 3e-3);
      events[c].push_back(WorkloadEvent{
          false, 1000000ULL * c + static_cast<std::uint64_t>(k), stamp});
      if (k % 5 == 4) {
        events[c].push_back(WorkloadEvent{true, 0, stamp + 0.1e-3});
      }
    }
    events[c].push_back(WorkloadEvent{true, 0, stamp + 50e-3});
  }
  return events;
}

/// Drives one client's workload straight into its session (the shard
/// bench path: ingest without the wire, so the uplink+merge tier is what
/// gets measured).
void drive_session(core::FairOrderingService& service, std::uint32_t client,
                   const std::vector<WorkloadEvent>& events) {
  auto session = service.open_session(ClientId(client));
  std::vector<core::Submission> batch;
  for (const WorkloadEvent& event : events) {
    if (event.is_heartbeat) {
      session.submit_batch(std::span<const core::Submission>(batch));
      batch.clear();
      session.heartbeat(TimePoint(event.stamp),
                        TimePoint(event.stamp) + kWireDelay);
    } else {
      batch.push_back(core::Submission{TimePoint(event.stamp),
                                       MessageId(event.id),
                                       TimePoint(event.stamp) + kWireDelay});
    }
  }
  session.submit_batch(std::span<const core::Submission>(batch));
}

/// Flat digest of one ordered record — shard/node tag, rank, gate times,
/// and every message field. Two streams are bit-identical iff their
/// digests are equal.
void digest_batch(std::vector<double>& digest, std::uint32_t node,
                  std::uint64_t rank, double safe_time, double emitted_at) {
  digest.push_back(static_cast<double>(node));
  digest.push_back(static_cast<double>(rank));
  digest.push_back(safe_time);
  digest.push_back(emitted_at);
}

void digest_message(std::vector<double>& digest, std::uint64_t id,
                    std::uint32_t client, double stamp, double arrival) {
  digest.push_back(static_cast<double>(id));
  digest.push_back(static_cast<double>(client));
  digest.push_back(stamp);
  digest.push_back(arrival);
}

std::vector<TimePoint> poll_schedule() {
  return {TimePoint(1.05), TimePoint(1.2), TimePoint(1.5), TimePoint(2.5)};
}

// The failover demo pumps a denser schedule so the first frontier
// releases only part of the workload — the primary dies with work still
// held back, and the standby serves genuinely new batches after the
// watermark splice (not just the replayed prefix).
std::vector<TimePoint> failover_schedule() {
  return {TimePoint(1.01), TimePoint(1.03), TimePoint(1.05),
          TimePoint(1.2), TimePoint(2.5)};
}

// ── flag helpers ────────────────────────────────────────────────────────

struct Args {
  std::uint32_t nodes{2};
  std::uint32_t node{0};
  std::uint32_t clients{6};
  int messages{12};
  std::uint64_t seed{42};
  std::uint32_t wait_subscribers{1};
  std::uint32_t standbys{0};
  std::string uplink_prefix;
  std::string ingest_prefix;
  std::string listen;
  std::string json;
  std::string downlink;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = ++i < argc ? argv[i] : nullptr;
    if (value == nullptr) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    if (flag == "--nodes") args.nodes = static_cast<std::uint32_t>(std::atoi(value));
    else if (flag == "--node") args.node = static_cast<std::uint32_t>(std::atoi(value));
    else if (flag == "--clients") args.clients = static_cast<std::uint32_t>(std::atoi(value));
    else if (flag == "--messages") args.messages = std::atoi(value);
    else if (flag == "--seed") args.seed = static_cast<std::uint64_t>(std::atoll(value));
    else if (flag == "--wait-subscribers") args.wait_subscribers = static_cast<std::uint32_t>(std::atoi(value));
    else if (flag == "--standbys") args.standbys = static_cast<std::uint32_t>(std::atoi(value));
    else if (flag == "--uplink-prefix") args.uplink_prefix = value;
    else if (flag == "--ingest-prefix") args.ingest_prefix = value;
    else if (flag == "--listen") args.listen = value;
    else if (flag == "--json") args.json = value;
    else if (flag == "--downlink") args.downlink = value;
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::string indexed_path(const std::string& prefix, std::uint32_t index) {
  return prefix + "_" + std::to_string(index) + ".sock";
}

// ── shard: one node of the bench deployment ─────────────────────────────

int run_shard(const Args& args) {
  if (args.uplink_prefix.empty() || args.node >= args.nodes) {
    std::fprintf(stderr,
                 "usage: multinode shard --node I --nodes N --uplink-prefix P "
                 "[--clients C --messages M --seed S]\n");
    return 2;
  }
  auto registry = make_registry(args.clients);
  dist::Topology topology(std::vector<dist::NodeEndpoints>(args.nodes),
                          ids(args.clients));
  dist::ShardNodeConfig config;
  config.node = args.node;
  config.frontend = modeled_frontend();
  dist::ShardNode node(registry, topology.partition(args.node), config);
  if (!node.listen_uplink_unix(indexed_path(args.uplink_prefix, args.node))) {
    std::fprintf(stderr, "shard %u: uplink listen failed\n", args.node);
    return 1;
  }

  // Wait for every merge subscriber (primary + standbys) before
  // streaming, so the bench clock over on the merge side covers the
  // whole uplink volume.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (node.subscriber_count() < args.wait_subscribers) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "shard %u: %zu/%u merge subscribers\n",
                   args.node, node.subscriber_count(),
                   args.wait_subscribers);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto workload =
      make_workload(args.clients, args.messages, args.seed);
  for (ClientId c : topology.partition(args.node)) {
    drive_session(node.service(), c.value(), workload[c.value()]);
  }
  node.pump_flush(TimePoint(1e9));
  std::fprintf(stderr, "shard %u: published %zu frames\n", args.node,
               node.frames_retained());
  node.stop();
  return 0;
}

// ── merge: the global tier, reporting ingest throughput ─────────────────

int run_merge(const Args& args) {
  if (args.uplink_prefix.empty()) {
    std::fprintf(stderr,
                 "usage: multinode merge --nodes N --uplink-prefix P "
                 "[--clients C --messages M --json OUT]\n");
    return 2;
  }
  dist::MergeConfig config;
  config.retry.attempts = 5000;  // shard processes may still be binding
  dist::MergeNode merge(args.nodes, config);
  if (!args.downlink.empty()
      && !merge.listen_downlink_unix(args.downlink)) {
    std::fprintf(stderr, "merge: downlink listen failed on %s\n",
                 args.downlink.c_str());
    return 1;
  }
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    if (!merge.connect_unix(n, indexed_path(args.uplink_prefix, n))) {
      std::fprintf(stderr, "merge: cannot reach shard %u uplink\n", n);
      return 1;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Drain until every shard's uplink closed (the shard processes exit
  // once they have flushed), then open the gate fully.
  auto any_connected = [&] {
    for (std::uint32_t n = 0; n < args.nodes; ++n) {
      if (merge.peer(n).connected) return true;
    }
    return false;
  };
  while (any_connected()) {
    merge.release();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  merge.release();
  merge.flush();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t messages = 0;
  const auto released = merge.released();
  for (const net::OrderedBatch& batch : released) {
    messages += batch.messages.size();
  }
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    const auto stats = merge.peer(n);
    if (stats.error != dist::MergeError::kNone) {
      std::fprintf(stderr, "merge: shard %u uplink error: %s\n", n,
                   dist::to_string(stats.error));
      return 1;
    }
  }
  const std::uint64_t expected = static_cast<std::uint64_t>(args.messages)
                                 * args.clients;
  if (messages != expected) {
    std::fprintf(stderr,
                 "merge: released %llu messages, expected %llu\n",
                 static_cast<unsigned long long>(messages),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  const double items_per_second =
      static_cast<double>(messages) / wall_seconds;
  std::printf(
      "merged %zu batches / %llu messages from %u shard uplinks "
      "(%u standby replicas attached) in %.3f s = %.0f msg/s\n",
      released.size(), static_cast<unsigned long long>(messages), args.nodes,
      args.standbys, wall_seconds, items_per_second);

  if (!args.json.empty()) {
    std::FILE* out = std::fopen(args.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json.c_str());
      return 1;
    }
    // google-benchmark-shaped entry so bench_multinode.sh can merge it
    // into BENCH_throughput.json and CI can track the family. The
    // standby-attached variant gets its own name so the baseline row's
    // history stays comparable.
    std::string name = "MN_MergeIngest/nodes:" + std::to_string(args.nodes);
    if (args.standbys > 0) {
      name += "/standbys:" + std::to_string(args.standbys);
    }
    name += "/messages:" + std::to_string(expected);
    std::fprintf(
        out,
        "{\n"
        "  \"context\": {\"hardware_threads\": %u, \"nodes\": %u},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"%s\",\n"
        "     \"run_name\": \"%s\","
        " \"run_type\": \"iteration\", \"repetitions\": 1,"
        " \"repetition_index\": 0, \"threads\": 1, \"iterations\": 1,\n"
        "     \"real_time\": %.6f, \"cpu_time\": %.6f,"
        " \"time_unit\": \"ms\", \"items_per_second\": %.1f}\n"
        "  ]\n"
        "}\n",
        std::thread::hardware_concurrency(), args.nodes, name.c_str(),
        name.c_str(), wall_seconds * 1e3, wall_seconds * 1e3,
        items_per_second);
    std::fclose(out);
  }
  merge.stop();
  return 0;
}

// ── router: the thin relay tier as its own process ──────────────────────

volatile std::sig_atomic_t g_stop = 0;

int run_router(const Args& args) {
  if (args.listen.empty() || args.ingest_prefix.empty()) {
    std::fprintf(stderr,
                 "usage: multinode router --listen PATH --nodes N "
                 "--ingest-prefix P [--clients C]\n");
    return 2;
  }
  std::vector<dist::NodeEndpoints> endpoints(args.nodes);
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    endpoints[n].ingest.unix_path = indexed_path(args.ingest_prefix, n);
  }
  dist::RouterNode router(
      dist::Topology(std::move(endpoints), ids(args.clients)));
  if (!router.listen_unix(args.listen)) {
    std::fprintf(stderr, "router: listen failed on %s\n",
                 args.listen.c_str());
    return 1;
  }
  std::printf("routing %s -> %u shard ingest endpoints\n",
              args.listen.c_str(), args.nodes);
  std::fflush(stdout);
  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  router.stop();
  return 0;
}

// ── demo: the full topology in one process, checked against the oracle ──

int run_demo(const Args& args) {
  std::printf("=== multi-node demo: %u shard nodes + router + merge ===\n\n",
              args.nodes);
  const auto workload =
      make_workload(args.clients, args.messages, args.seed);

  // The oracle: one process, N shards, globally merged drain.
  std::vector<double> oracle;
  {
    auto registry = make_registry(args.clients);
    core::FairOrderingService service(
        registry, ids(args.clients),
        core::ServiceConfig{}
            .with_shards(args.nodes)
            .with_drain_policy(core::DrainPolicy::kGlobalMerge));
    for (std::uint32_t c = 0; c < args.clients; ++c) {
      drive_session(service, c, workload[c]);
    }
    auto sink = [&oracle](core::EmissionRecord&& record,
                          std::uint32_t shard) {
      digest_batch(oracle, shard, record.batch.rank,
                   record.safe_time.seconds(), record.emitted_at.seconds());
      for (const core::Message& m : record.batch.messages) {
        digest_message(oracle, m.id.value(), m.client.value(),
                       m.stamp.seconds(), m.arrival.seconds());
      }
    };
    for (TimePoint t : poll_schedule()) service.poll(t, sink);
    service.flush(TimePoint(3.0), sink);
  }

  // The deployment: shard nodes, router, merge, real sockets.
  const std::string prefix =
      "/tmp/tommy_mn_demo_" + std::to_string(::getpid());
  std::vector<dist::NodeEndpoints> endpoints(args.nodes);
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    endpoints[n].ingest.unix_path = indexed_path(prefix + "_in", n);
    endpoints[n].uplink.unix_path = indexed_path(prefix + "_up", n);
  }
  dist::Topology topology(endpoints, ids(args.clients));

  std::vector<core::ClientRegistry> registries(args.nodes);
  std::vector<std::unique_ptr<dist::ShardNode>> nodes(args.nodes);
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    registries[n] = make_registry(args.clients);
    dist::ShardNodeConfig config;
    config.node = n;
    config.frontend = modeled_frontend();
    nodes[n] = std::make_unique<dist::ShardNode>(
        registries[n], topology.partition(n), config);
    if (!nodes[n]->listen_ingest_unix(endpoints[n].ingest.unix_path)
        || !nodes[n]->listen_uplink_unix(endpoints[n].uplink.unix_path)) {
      std::fprintf(stderr, "shard %u: listen failed\n", n);
      return 1;
    }
  }
  dist::RouterNode router(topology);
  const std::string router_path = prefix + "_router.sock";
  if (!router.listen_unix(router_path)) return 1;
  dist::MergeNode merge(args.nodes);
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    if (!merge.connect_unix(n, endpoints[n].uplink.unix_path)) {
      std::fprintf(stderr, "merge: uplink %u unreachable\n", n);
      return 1;
    }
  }

  // Real clients through the router: announce, handshake, stream, EOF.
  std::vector<std::shared_ptr<net::ByteStream>> held_open(args.clients);
  std::vector<std::thread> clients;
  std::atomic<int> client_failures{0};
  for (std::uint32_t c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      auto stream = net::connect_unix(router_path, net::RetryPolicy{});
      if (stream == nullptr
          || net::perform_handshake(
                 *stream,
                 net::DistributionAnnouncement{ClientId(c), summary_for(c)})
                 != net::HandshakeResult::kAccepted) {
        client_failures.fetch_add(1);
        return;
      }
      std::vector<std::uint8_t> bytes;
      for (const WorkloadEvent& event : workload[c]) {
        std::vector<std::uint8_t> frame;
        if (event.is_heartbeat) {
          frame = net::encode_frame(net::WireMessage(
              net::Heartbeat{ClientId(c), TimePoint(event.stamp)}));
        } else {
          frame = net::encode_frame(net::WireMessage(net::TimestampedMessage{
              ClientId(c), MessageId(event.id), TimePoint(event.stamp)}));
        }
        bytes.insert(bytes.end(), frame.begin(), frame.end());
      }
      if (!stream->write_all(bytes)) {
        client_failures.fetch_add(1);
        return;
      }
      stream->close_write();
      held_open[c] = std::move(stream);
    });
  }
  for (std::thread& t : clients) t.join();
  if (client_failures.load() != 0) {
    std::fprintf(stderr, "client connections failed\n");
    return 1;
  }

  // Barrier: every node ingested its whole partition (the oracle sees
  // all ingest before its first poll; so must the deployment).
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    std::uint64_t submits = 0;
    std::uint64_t heartbeats = 0;
    for (ClientId c : topology.partition(n)) {
      for (const WorkloadEvent& e : workload[c.value()]) {
        (e.is_heartbeat ? heartbeats : submits)++;
      }
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (true) {
      const auto totals = nodes[n]->server().frontend().totals();
      if (totals.submits_in == submits
          && totals.heartbeats_in == heartbeats) {
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "shard %u: ingest incomplete\n", n);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Pump the shared schedule; gossip gates each round's release.
  std::uint64_t announces = 0;
  auto schedule = poll_schedule();
  schedule.push_back(TimePoint(3.0));
  for (std::size_t round = 0; round < schedule.size(); ++round) {
    const bool last = round + 1 == schedule.size();
    for (std::uint32_t n = 0; n < args.nodes; ++n) {
      if (last) {
        nodes[n]->pump_flush(schedule[round]);
      } else {
        nodes[n]->pump(schedule[round]);
      }
    }
    ++announces;
    for (std::uint32_t n = 0; n < args.nodes; ++n) {
      if (!merge.wait_for_announces(n, announces, 10000)) {
        std::fprintf(stderr, "shard %u: gossip missing\n", n);
        return 1;
      }
    }
    merge.release();
  }
  merge.flush();

  std::vector<double> distributed;
  for (const net::OrderedBatch& batch : merge.released()) {
    digest_batch(distributed, batch.node, batch.rank,
                 batch.safe_time.seconds(), batch.emitted_at.seconds());
    for (const net::OrderedBatch::Entry& entry : batch.messages) {
      digest_message(distributed, entry.id.value(), entry.client.value(),
                     entry.stamp.seconds(), entry.arrival.seconds());
    }
  }

  const bool identical = distributed == oracle;
  std::printf(
      "%u clients -> router -> %u shard nodes -> merge: released %zu "
      "batches, %s the single-process global-merge oracle\n",
      args.clients, args.nodes, merge.released().size(),
      identical ? "BIT-IDENTICAL to" : "DIVERGED from");

  merge.stop();
  router.stop();
  for (auto& node : nodes) node->stop();
  return identical ? 0 : 1;
}

// ── failover: replicated merge tier, primary killed mid-schedule ────────

int run_failover_demo(const Args& args) {
  std::printf(
      "=== merge failover demo: %u shards -> primary + standby merge, "
      "primary killed mid-run ===\n\n",
      args.nodes);
  const auto workload =
      make_workload(args.clients, args.messages, args.seed);

  // The oracle: one process, N shards, globally merged drain.
  std::vector<double> oracle;
  std::size_t oracle_batches = 0;
  {
    auto registry = make_registry(args.clients);
    core::FairOrderingService service(
        registry, ids(args.clients),
        core::ServiceConfig{}
            .with_shards(args.nodes)
            .with_drain_policy(core::DrainPolicy::kGlobalMerge));
    for (std::uint32_t c = 0; c < args.clients; ++c) {
      drive_session(service, c, workload[c]);
    }
    auto sink = [&](core::EmissionRecord&& record, std::uint32_t shard) {
      ++oracle_batches;
      digest_batch(oracle, shard, record.batch.rank,
                   record.safe_time.seconds(), record.emitted_at.seconds());
      for (const core::Message& m : record.batch.messages) {
        digest_message(oracle, m.id.value(), m.client.value(),
                       m.stamp.seconds(), m.arrival.seconds());
      }
    };
    for (TimePoint t : failover_schedule()) service.poll(t, sink);
    service.flush(TimePoint(3.0), sink);
  }

  // Shard tier, ingest driven in-process (the wire ingest path is the
  // plain demo's subject; here the merge tier is what fails over).
  const std::string prefix =
      "/tmp/tommy_mn_failover_" + std::to_string(::getpid());
  std::vector<dist::NodeEndpoints> endpoints(args.nodes);
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    endpoints[n].uplink.unix_path = indexed_path(prefix + "_up", n);
  }
  dist::Topology topology(endpoints, ids(args.clients));
  std::vector<core::ClientRegistry> registries(args.nodes);
  std::vector<std::unique_ptr<dist::ShardNode>> nodes(args.nodes);
  for (std::uint32_t n = 0; n < args.nodes; ++n) {
    registries[n] = make_registry(args.clients);
    dist::ShardNodeConfig config;
    config.node = n;
    config.frontend = modeled_frontend();
    nodes[n] = std::make_unique<dist::ShardNode>(
        registries[n], topology.partition(n), config);
    if (!nodes[n]->listen_uplink_unix(endpoints[n].uplink.unix_path)) {
      std::fprintf(stderr, "shard %u: uplink listen failed\n", n);
      return 1;
    }
    for (ClientId c : topology.partition(n)) {
      drive_session(nodes[n]->service(), c.value(), workload[c.value()]);
    }
  }

  // Primary + hot standby over the same uplinks, each with a downlink.
  const std::string primary_downlink = prefix + "_primary.sock";
  const std::string standby_downlink = prefix + "_standby.sock";
  auto start_merge = [&](const std::string& downlink)
      -> std::unique_ptr<dist::MergeNode> {
    auto merge = std::make_unique<dist::MergeNode>(args.nodes);
    if (!merge->listen_downlink_unix(downlink)) return nullptr;
    for (std::uint32_t n = 0; n < args.nodes; ++n) {
      if (!merge->connect_unix(n, endpoints[n].uplink.unix_path)) {
        return nullptr;
      }
    }
    return merge;
  };
  auto primary = start_merge(primary_downlink);
  auto standby = start_merge(standby_downlink);
  if (primary == nullptr || standby == nullptr) {
    std::fprintf(stderr, "merge replica startup failed\n");
    return 1;
  }

  dist::MergeSubscriberConfig subscriber_config;
  subscriber_config.endpoints = {
      dist::NodeAddress{primary_downlink, 0},
      dist::NodeAddress{standby_downlink, 0}};
  dist::MergeSubscriber subscriber(subscriber_config);
  subscriber.start();

  // Pump the shared schedule; kill the primary after the first round.
  auto schedule = failover_schedule();
  schedule.push_back(TimePoint(3.0));
  std::uint64_t announces = 0;
  for (std::size_t round = 0; round < schedule.size(); ++round) {
    const bool last = round + 1 == schedule.size();
    for (std::uint32_t n = 0; n < args.nodes; ++n) {
      if (last) {
        nodes[n]->pump_flush(schedule[round]);
      } else {
        nodes[n]->pump(schedule[round]);
      }
    }
    ++announces;
    for (dist::MergeNode* merge :
         {primary.get(), standby.get()}) {
      if (merge == nullptr) continue;
      for (std::uint32_t n = 0; n < args.nodes; ++n) {
        if (!merge->wait_for_announces(n, announces, 10000)) {
          std::fprintf(stderr, "shard %u: gossip missing\n", n);
          return 1;
        }
      }
      merge->release();
    }
    if (round == 0) {
      const auto watermark = primary->watermark();
      std::printf(
          "round %zu: killing the primary at watermark %llu "
          "(safe_time %.6f)\n",
          round, static_cast<unsigned long long>(watermark.released),
          watermark.safe_time.seconds());
      primary.reset();  // downlink dies mid-stream; the subscriber cuts over
    }
  }
  standby->flush();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (subscriber.released_count() < oracle_batches) {
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<double> spliced;
  for (const net::OrderedBatch& batch : subscriber.released()) {
    digest_batch(spliced, batch.node, batch.rank,
                 batch.safe_time.seconds(), batch.emitted_at.seconds());
    for (const net::OrderedBatch::Entry& entry : batch.messages) {
      digest_message(spliced, entry.id.value(), entry.client.value(),
                     entry.stamp.seconds(), entry.arrival.seconds());
    }
  }
  const auto stats = subscriber.stats();
  const bool identical = spliced == oracle
                         && stats.error == dist::SubscriberError::kNone;
  std::printf(
      "subscriber: %zu batches across %llu cutover(s), %llu replayed "
      "duplicates dropped at the watermark, %s the global-merge oracle\n",
      subscriber.released_count(),
      static_cast<unsigned long long>(stats.cutovers),
      static_cast<unsigned long long>(stats.duplicates),
      identical ? "BIT-IDENTICAL to" : "DIVERGED from");

  subscriber.stop();
  standby->stop();
  for (auto& node : nodes) node->stop();
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (!parse_args(argc, argv, args)) return 2;
  if (mode == "demo") return run_demo(args);
  if (mode == "failover") return run_failover_demo(args);
  if (mode == "shard") return run_shard(args);
  if (mode == "merge") return run_merge(args);
  if (mode == "router") return run_router(args);
  std::fprintf(stderr,
               "unknown mode '%s' (demo|failover|shard|merge|router)\n",
               mode.c_str());
  return 2;
}
