// Ad-exchange auction with non-Gaussian clocks (§3.3): bidders' clock
// offsets are long-tailed and skewed (Gumbel — the "Gaussian-like but
// long tail" shape reported for real offset data), so the closed form does
// not apply and the sequencer runs the convolution path. Also demonstrates
// the fair-total-order extension (§5): random within-batch tie-breaking
// with long-run win accounting.
//
// Build & run:  ./build/examples/ad_auction
#include <cstdio>
#include <memory>

#include "core/tie_breaker.hpp"
#include "core/tommy_sequencer.hpp"
#include "metrics/ras.hpp"
#include "sim/offline_runner.hpp"
#include "stats/analytic.hpp"

int main() {
  using namespace tommy;
  using namespace tommy::literals;

  constexpr std::size_t kBidders = 24;
  constexpr std::size_t kAuctions = 200;

  Rng rng(555);
  // Long-tailed, skewed offsets: ad bidders on congested paths.
  const sim::Population bidders = sim::gumbel_population(kBidders, 30e-6, rng);

  const auto bids =
      sim::burst_workload(bidders.ids(), kAuctions, 5_ms, 1_us, 60_us, rng);
  const auto observed =
      sim::materialize_messages(bidders, bids, sim::MaterializeConfig{}, rng);

  core::ClientRegistry registry;
  bidders.seed_registry(registry);

  core::TommyConfig config;
  config.threshold = 0.75;
  config.preceding.grid_points = 512;   // numeric Δθ-density path
  config.max_tournament_nodes = 8192;
  core::TommySequencer tommy(registry, config);

  const sim::SequencerScore score = sim::score_sequencer(tommy, observed);
  std::printf("ad auction: %zu bidders (Gumbel offsets), %zu auctions\n",
              kBidders, kAuctions);
  std::printf("tommy RAS %.4f over %llu pairs; %zu batches "
              "(mean size %.2f)\n",
              score.ras.normalized(),
              static_cast<unsigned long long>(score.ras.pairs),
              score.batches.batch_count, score.batches.mean_batch_size);
  std::printf("Δθ densities cached per ordered client pair: %zu\n",
              tommy.engine().cached_pairs());
  std::printf("tournament transitive this run: %s\n",
              tommy.last_diagnostics().tournament_transitive ? "yes" : "no");

  // Fair total order (§5): applications that need a single winner per
  // auction break within-batch ties randomly; over many auctions no
  // bidder is systematically preferred.
  std::vector<core::Message> input;
  for (const auto& om : observed) input.push_back(om.message);
  const auto result = tommy.sequence(std::move(input));

  core::FairTieBreaker breaker(777);
  const auto total_order = breaker.total_order(result);
  std::printf("\nfair total order: %zu messages, tie-broken batches: %zu\n",
              total_order.size(), breaker.ledger().client_count());
  if (breaker.ledger().client_count() > 0) {
    std::printf("long-run tie-break win-rate disparity (max/min): %.2f "
                "(1.0 = perfectly even)\n",
                breaker.ledger().disparity(10));
  }
  return 0;
}
