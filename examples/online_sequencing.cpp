// Online sequencing demo (§3.5 / Appendix C): a live stream of messages
// and heartbeats over FIFO channels, with safe-emission gating. Prints an
// event timeline so the waiting/merging behaviour is visible (driven
// through per-connection Session handles — the hash-free ingest surface),
// then runs a larger randomized stream through the sharded
// FairOrderingService and reports latency/violation statistics.
//
// Build & run:  ./build/examples/online_sequencing
#include <cstdio>

#include "core/online_sequencer.hpp"
#include "core/service.hpp"
#include "sim/online_runner.hpp"
#include "stats/gaussian.hpp"

namespace {

using namespace tommy;
using namespace tommy::literals;

void appendix_c_walkthrough() {
  std::printf("--- Appendix C walkthrough (session API) ---\n");
  core::ClientRegistry registry;
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 0.05));
  registry.announce(ClientId(2), std::make_unique<stats::Gaussian>(0.0, 1.0));

  core::OnlineConfig config;
  config.threshold = 0.75;
  config.p_safe = 0.999;
  core::OnlineSequencer seq(registry, {ClientId(1), ClientId(2)}, config);

  // One session per connected client: the dense index and per-client
  // offsets are resolved here, once, not per message.
  auto c1 = seq.open_session(ClientId(1));
  auto c2 = seq.open_session(ClientId(2));

  const auto report = [&seq](const char* what) {
    std::printf("%-34s pending=%zu next_safe=%gs\n", what,
                seq.pending_count(),
                seq.next_safe_time().is_finite()
                    ? seq.next_safe_time().seconds()
                    : -1.0);
  };

  // Step 1: C1's first message (true 100.0, stamp 100.0).
  c1.submit(TimePoint(100.0), MessageId(10), TimePoint(100.1));
  report("1a arrives (stamp 100.0)");

  // Step 2: C2's high-uncertainty message (true 100.2, stamp 100.6).
  c2.submit(TimePoint(100.6), MessageId(20), TimePoint(100.7));
  report("2 arrives  (stamp 100.6, wide)");

  // Step 3: C1's second message (true 100.3, stamp 100.3).
  c1.submit(TimePoint(100.3), MessageId(11), TimePoint(100.8));
  report("1b arrives (stamp 100.3)");

  // Step 4: safe emission. Heartbeats answer Q2; the poll past T_b emits
  // one merged batch {1a, 1b, 2}.
  c1.heartbeat(TimePoint(108.0), TimePoint(104.0));
  c2.heartbeat(TimePoint(108.0), TimePoint(104.0));
  const auto emissions = seq.poll(TimePoint(104.0));
  for (const core::EmissionRecord& e : emissions) {
    std::printf("emitted rank %llu at %.2fs (T_b=%.2fs):",
                static_cast<unsigned long long>(e.batch.rank),
                e.emitted_at.seconds(), e.safe_time.seconds());
    for (const core::Message& m : e.batch.messages) {
      std::printf(" msg%llu", static_cast<unsigned long long>(m.id.value()));
    }
    std::printf("\n");
  }
}

void randomized_stream() {
  std::printf("\n--- randomized online stream (FairOrderingService) ---\n");
  Rng rng(99);
  const sim::Population pop = sim::gaussian_population(30, 80e-6, rng);
  const auto events = sim::poisson_workload(pop.ids(), 2000, 100_us, rng);

  for (double p_safe : {0.99, 0.9999}) {
    sim::OnlineRunConfig config;
    config.sequencer.p_safe = p_safe;
    config.heartbeat_interval = 500_us;
    config.poll_interval = 100_us;
    config.drain = 100_ms;

    Rng run_rng(7);
    const sim::OnlineRunResult result =
        sim::run_online(pop, events, config, run_rng);
    std::printf(
        "p_safe=%.4f  emitted=%zu  ras=%.3f  violations=%zu  "
        "latency p50=%.2fms p99=%.2fms\n",
        p_safe, result.emitted_messages, result.ras.normalized(),
        result.fairness_violations, result.emission_latency.p50 * 1e3,
        result.emission_latency.p99 * 1e3);
  }
  std::printf(
      "higher p_safe: fewer fairness violations, higher emission latency\n");

  // The same stream through 1/2/4 shards: per-shard fairness is
  // preserved, the completeness gates decouple, and latency falls as
  // each shard only waits on its own clients. The threaded execution
  // engine (per-shard workers + SPSC ingest rings) produces the exact
  // same emissions — the workers are an invisible optimization — so the
  // sweep runs both engines and reports them side by side.
  std::printf("\nshard sweep (p_safe=0.999, range router):\n");
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (const bool workers : {false, true}) {
      sim::OnlineRunConfig config;
      config.sequencer.p_safe = 0.999;
      config.shard_count = shards;
      config.worker_threads = workers;
      config.heartbeat_interval = 500_us;
      config.poll_interval = 100_us;
      config.drain = 100_ms;

      Rng run_rng(7);
      const sim::OnlineRunResult result =
          sim::run_online(pop, events, config, run_rng);
      std::printf(
          "shards=%u %-8s emitted=%zu  batches=%zu  violations=%zu  "
          "latency p50=%.2fms p99=%.2fms\n",
          shards, workers ? "threaded" : "inline", result.emitted_messages,
          result.emissions.size(), result.fairness_violations,
          result.emission_latency.p50 * 1e3,
          result.emission_latency.p99 * 1e3);
    }
  }

  // Consumers that need one total stream across shards: the global-merge
  // drain releases batches in (T_b, shard, rank) order, gated on
  // min(next_safe_time) across shards.
  std::printf("\nglobal-merge drain (4 shards, threaded):\n");
  {
    sim::OnlineRunConfig config;
    config.sequencer.p_safe = 0.999;
    config.shard_count = 4;
    config.worker_threads = true;
    config.drain_policy = core::DrainPolicy::kGlobalMerge;
    config.heartbeat_interval = 500_us;
    config.poll_interval = 100_us;
    config.drain = 100_ms;

    Rng run_rng(7);
    const sim::OnlineRunResult result =
        sim::run_online(pop, events, config, run_rng);
    std::size_t ordered_pairs = 0;
    for (std::size_t r = 1; r < result.emissions.size(); ++r) {
      if (result.emissions[r - 1].safe_time <= result.emissions[r].safe_time) {
        ++ordered_pairs;
      }
    }
    std::printf(
        "emitted=%zu  batches=%zu  safe-time-ordered pairs=%zu/%zu  "
        "withheld at horizon=%zu\n",
        result.emitted_messages, result.emissions.size(), ordered_pairs,
        result.emissions.empty() ? 0 : result.emissions.size() - 1,
        result.unemitted_messages);
  }
}

}  // namespace

int main() {
  appendix_c_walkthrough();
  randomized_stream();
  return 0;
}
