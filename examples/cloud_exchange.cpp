// Cloud exchange scenario — the paper's motivating auction-app (§1, §2).
//
// A market-data event is broadcast to traders; each fires an order within
// microseconds. Traders run in two "regions": a local one with tight
// clocks and a remote one whose clocks err by tens of microseconds (the
// multi-region deployment of §2 where WFO/Onyx-style designs break).
// We compare how often each sequencer awards the "trade" (first rank) to
// the truly-first order, and each design's overall fairness.
//
// The closing section runs the same order flow through the *online*
// front-end — a sharded FairOrderingService with one ingest Session per
// trader — to show what the exchange actually deploys: region-aligned
// shards whose completeness gates only wait on their own traders.
//
// Build & run:  ./build/examples/cloud_exchange
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/baselines.hpp"
#include "core/service.hpp"
#include "core/tommy_sequencer.hpp"
#include "metrics/ras.hpp"
#include "sim/offline_runner.hpp"
#include "stats/gaussian.hpp"

namespace {

using namespace tommy;
using namespace tommy::literals;

/// Two-region population: ids [0, n/2) local (σ ~ 2µs), rest remote
/// (σ ~ 40µs, biased means — cross-region sync asymmetry).
sim::Population two_region_population(std::size_t n, Rng& rng) {
  std::vector<sim::ClientSpec> clients;
  for (std::size_t k = 0; k < n; ++k) {
    const bool local = k < n / 2;
    const double mu = local ? rng.uniform(-2e-6, 2e-6)
                            : rng.uniform(-40e-6, 40e-6);
    const double sigma = local ? rng.uniform(1e-6, 3e-6)
                               : rng.uniform(20e-6, 60e-6);
    clients.push_back(sim::ClientSpec{
        ClientId(static_cast<std::uint32_t>(k)),
        std::make_unique<stats::Gaussian>(mu, sigma)});
  }
  return sim::Population(std::move(clients));
}

}  // namespace

int main() {
  constexpr std::size_t kTraders = 100;
  constexpr std::size_t kBursts = 50;

  Rng rng(2024);
  const sim::Population traders = two_region_population(kTraders, rng);

  // Market events every 10 ms; every trader reacts within 5-100 µs.
  const auto orders =
      sim::burst_workload(traders.ids(), kBursts, 10_ms, 5_us, 100_us, rng);
  sim::MaterializeConfig mat;
  mat.mean_net_delay = 150_us;  // cloud fabric, no equal-length wires:
                                // delay spread exceeds the reaction window
  const auto observed = sim::materialize_messages(traders, orders, mat, rng);

  core::ClientRegistry registry;
  traders.seed_registry(registry);

  core::TommySequencer tommy(registry);
  core::TrueTimeSequencer truetime(registry);
  core::WfoSequencer wfo;
  core::FifoSequencer fifo;

  std::printf("cloud exchange: %zu traders (half remote), %zu bursts, "
              "%zu orders\n\n", kTraders, kBursts, observed.size());
  std::printf("%-10s %12s %10s %12s %12s\n", "sequencer", "RAS", "batches",
              "correct", "incorrect");

  core::Sequencer* sequencers[] = {&tommy, &truetime, &wfo, &fifo};
  for (core::Sequencer* seq : sequencers) {
    const sim::SequencerScore score = sim::score_sequencer(*seq, observed);
    std::printf("%-10s %12.4f %10zu %12llu %12llu\n", score.sequencer.c_str(),
                score.ras.normalized(), score.batches.batch_count,
                static_cast<unsigned long long>(score.ras.correct),
                static_cast<unsigned long long>(score.ras.incorrect));
  }

  // Per-burst "who wins the trade": does the first-ranked order belong to
  // the truly-first trader? (Ties within a batch count as a win if the
  // true winner is anywhere in the first batch — it still has a chance
  // under random tie-breaking.)
  // "Reachable" alone can mislead: a sequencer that lumps a whole burst
  // into one batch trivially contains the winner but awards it a 1-in-N
  // lottery under tie-breaking. Expected wins = Σ 1/(first batch size)
  // over bursts where the winner is in the first batch.
  std::printf("\nfirst-order attribution per burst:\n");
  std::printf("  %-10s %12s %18s %15s\n", "sequencer", "reachable",
              "mean 1st batch", "expected wins");
  for (core::Sequencer* seq : sequencers) {
    std::size_t reachable = 0;
    double expected_wins = 0.0;
    double first_batch_sizes = 0.0;
    for (std::size_t b = 0; b < kBursts; ++b) {
      // Orders of this burst only.
      std::vector<sim::ObservedMessage> burst;
      for (std::size_t k = b * kTraders; k < (b + 1) * kTraders; ++k) {
        burst.push_back(observed[k]);
      }
      // True winner = smallest true time.
      const auto* winner = &burst.front();
      for (const auto& om : burst) {
        if (om.true_time < winner->true_time) winner = &om;
      }
      std::vector<core::Message> input;
      for (const auto& om : burst) input.push_back(om.message);
      const auto result = seq->sequence(std::move(input));
      const auto& first_batch = result.batches.front().messages;
      first_batch_sizes += static_cast<double>(first_batch.size());
      for (const core::Message& m : first_batch) {
        if (m.id == winner->message.id) {
          ++reachable;
          expected_wins += 1.0 / static_cast<double>(first_batch.size());
          break;
        }
      }
    }
    std::printf("  %-10s %7zu / %zu %18.1f %15.1f\n", seq->name().c_str(),
                reachable, kBursts,
                first_batch_sizes / static_cast<double>(kBursts),
                expected_wins);
  }

  std::printf(
      "\nTommy keeps fairness without equal-length wires (Fig. 4) or\n"
      "negligible clock error (Fig. 2): it batches what it cannot order\n"
      "confidently instead of guessing.\n");

  // ── The online front-end the exchange deploys ─────────────────────────
  // Each trader holds a Session into a FairOrderingService. With one
  // shard the remote region's wide clocks gate every emission; sharding
  // by client-id range puts the local region on shard 0 and the remote
  // region on shard 1, so local order flow clears its (tight) safe-
  // emission gates without waiting on remote uncertainty.
  std::printf("\nonline front-end (sessions + sharded service):\n");
  std::printf("  %-7s %10s %12s %17s %17s\n", "shards", "batches",
              "violations", "mean batch (all)", "mean batch (loc)");

  std::vector<sim::ObservedMessage> stream = observed;
  std::sort(stream.begin(), stream.end(),
            [](const sim::ObservedMessage& a, const sim::ObservedMessage& b) {
              if (a.message.arrival != b.message.arrival) {
                return a.message.arrival < b.message.arrival;
              }
              return a.message.id < b.message.id;
            });

  // Replay heartbeats lag their stamps behind sequencer time by more than
  // the network-delay tail: a heartbeat stamped `now − lag` only claims
  // the client's clock passed that instant, so it never vouches past
  // orders still in flight (which run_online gets for free from its FIFO
  // channels).
  const Duration heartbeat_lag = 2_ms;

  // The 4-shard row runs twice — inline and with the threaded execution
  // engine (per-shard workers fed by SPSC rings). The emitted batches are
  // bit-identical; only who does the insert+closure work changes.
  struct SweepPoint {
    std::uint32_t shards;
    bool workers;
  };
  for (const SweepPoint point : {SweepPoint{1, false}, SweepPoint{2, false},
                                 SweepPoint{4, false}, SweepPoint{4, true}}) {
    const std::uint32_t shards = point.shards;
    core::ServiceConfig service_config;
    service_config.with_p_safe(0.999).with_shards(shards).with_worker_threads(
        point.workers);
    core::FairOrderingService service(registry, traders.ids(),
                                      service_config);

    std::vector<core::FairOrderingService::Session> sessions;
    sessions.reserve(kTraders);
    for (ClientId id : traders.ids()) {
      sessions.push_back(service.open_session(id));
    }

    std::size_t batches = 0;
    double batch_total = 0.0;
    std::size_t local_batches = 0;
    double local_batch_total = 0.0;
    auto sink = [&](core::EmissionRecord&& record, std::uint32_t) {
      ++batches;
      batch_total += static_cast<double>(record.batch.messages.size());
      const bool all_local = std::all_of(
          record.batch.messages.begin(), record.batch.messages.end(),
          [](const core::Message& m) {
            return m.client.value() < kTraders / 2;
          });
      if (all_local) {
        ++local_batches;
        local_batch_total +=
            static_cast<double>(record.batch.messages.size());
      }
    };

    TimePoint now = TimePoint::epoch();
    std::size_t k = 0;
    for (const sim::ObservedMessage& om : stream) {
      now = std::max(now, om.message.arrival);
      sessions[om.message.client.value()].submit(om.message.stamp,
                                                 om.message.id, now);
      if (++k % 64 == 0) {
        for (auto& session : sessions) {
          session.heartbeat(now - heartbeat_lag, now);
        }
        service.poll(now, sink);
      }
    }
    for (auto& session : sessions) {
      session.heartbeat(now + 10_s, now + 1_ms);
    }
    service.poll(now + 1_s, sink);

    std::printf(
        "  %-2u %-4s %10zu %12zu %17.1f %17.1f\n", shards,
        point.workers ? "thrd" : "", batches, service.fairness_violations(),
        batches > 0 ? batch_total / static_cast<double>(batches) : 0.0,
        local_batches > 0
            ? local_batch_total / static_cast<double>(local_batches)
            : 0.0);
  }
  std::printf(
      "sharding by id range aligns shards with regions: local-only\n"
      "batches shrink to near-singletons because local order flow no\n"
      "longer merges with remote traders' clock uncertainty.\n");
  return 0;
}
