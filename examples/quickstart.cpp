// Quickstart: the smallest end-to-end use of the library.
//
//   1. Tell the sequencer each client's clock-offset distribution.
//   2. Hand it timestamped messages.
//   3. Read back rank-ordered batches (the fair partial order).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/tommy_sequencer.hpp"
#include "stats/gaussian.hpp"

int main() {
  using namespace tommy;

  // Three clients with different clock quality (offsets in seconds, w.r.t.
  // the sequencer's clock; T* = T + θ). Client 2's clock is mis-set by
  // +2 ms on average and wanders by 1.5 ms.
  core::ClientRegistry registry;
  registry.announce(ClientId(0),
                    std::make_unique<stats::Gaussian>(0.0, 100e-6));
  registry.announce(ClientId(1),
                    std::make_unique<stats::Gaussian>(-500e-6, 200e-6));
  registry.announce(ClientId(2),
                    std::make_unique<stats::Gaussian>(2e-3, 1.5e-3));

  // Messages with local timestamps. Note message 30's stamp is EARLIER
  // than message 11's, but client 2's +2 ms mean offset means it was
  // probably generated later.
  const std::vector<core::Message> messages = {
      {MessageId(10), ClientId(0), TimePoint(1.0000)},
      {MessageId(11), ClientId(1), TimePoint(1.0021)},
      {MessageId(30), ClientId(2), TimePoint(1.0005)},
      {MessageId(12), ClientId(0), TimePoint(1.0100)},
  };

  core::TommyConfig config;
  config.threshold = 0.75;  // batch-boundary confidence (§3.4)
  core::TommySequencer sequencer(registry, config);

  const core::SequencerResult result = sequencer.sequence(messages);

  std::printf("fair partial order (%zu batches):\n", result.batches.size());
  for (const core::Batch& batch : result.batches) {
    std::printf("  rank %llu:", static_cast<unsigned long long>(batch.rank));
    for (const core::Message& m : batch.messages) {
      std::printf(" msg %llu (client %u, T=%.4fs)",
                  static_cast<unsigned long long>(m.id.value()),
                  m.client.value(), m.stamp.seconds());
    }
    std::printf("\n");
  }

  // Pairwise confidence behind the ordering: the likely-happened-before
  // relation i -p-> j.
  const auto& engine = sequencer.engine();
  const double p = engine.preceding_probability(messages[1], messages[2]);
  std::printf("\nP(msg 11 happened before msg 30) = %.3f\n", p);
  return 0;
}
