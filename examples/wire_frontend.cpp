// Wire front-end demo: Figure 1 as processes would run it. Three "client"
// threads speak the wire protocol over real kernel sockets (socketpairs
// standing in for TCP connections): each announces its clock-offset
// distribution, streams timestamped messages and heartbeats as
// length-prefixed frames, and reads the fair order back as BatchEmission
// frames — while the sequencer side is nothing but a FairOrderingService
// (threaded engine) behind a FrameFrontend.
//
// Build & run:  ./build/example_wire_frontend
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/frontend.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace tommy;

  // The deployment's client population: per-client clock offset
  // distributions, announced to the registry out of band (in production:
  // a control plane; here: directly). Client 2's clock is mis-set by
  // +2 ms — the whole point of the paper is that its messages still land
  // where they probably belong.
  struct ClientSpec {
    std::uint32_t id;
    double mu;
    double sigma;
  };
  const std::vector<ClientSpec> specs = {
      {0, 0.0, 100e-6}, {1, -500e-6, 200e-6}, {2, 2e-3, 1.5e-3}};

  core::ClientRegistry registry;
  std::vector<ClientId> expected;
  for (const ClientSpec& spec : specs) {
    registry.announce(ClientId(spec.id),
                      stats::DistributionSummary(
                          stats::GaussianParams{spec.mu, spec.sigma}));
    expected.push_back(ClientId(spec.id));
  }

  core::ServiceConfig service_config;
  service_config.with_p_safe(0.99).with_worker_threads();
  core::FairOrderingService service(registry, expected, service_config);

  // The demo models the network as a fixed 0.5 ms delivery delay, so the
  // arrival clock is a pure function of each message — a replayable run.
  // Production would leave arrival_clock unset (monotonic wall clock).
  constexpr Duration kDelay = Duration(0.5e-3);
  net::FrontendConfig frontend_config;
  frontend_config.arrival_clock = [kDelay](const net::WireMessage& m) {
    if (const auto* msg = std::get_if<net::TimestampedMessage>(&m)) {
      return msg->local_stamp + kDelay;
    }
    return std::get<net::Heartbeat>(m).local_stamp + kDelay;
  };
  net::FrameFrontend frontend(registry, service, frontend_config);

  // One socketpair per client: the frontend adopts the server end, a
  // client thread drives the peer end exactly like a remote process.
  constexpr int kMessagesPerClient = 6;
  std::vector<std::shared_ptr<net::ByteStream>> peers;
  for (const ClientSpec& spec : specs) {
    auto [server_end, client_end] = net::make_socketpair_streams();
    frontend.add_connection(server_end);
    peers.push_back(client_end);
    (void)spec;
  }

  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    clients.emplace_back([&specs, &peers, i] {
      const ClientSpec& spec = specs[i];
      net::ByteStream& wire = *peers[i];
      Rng rng(1000 + spec.id);

      // Handshake: announce (or re-announce) the learned distribution.
      bool ok = wire.write_all(net::encode_frame(
          net::WireMessage(net::DistributionAnnouncement{
              ClientId(spec.id), stats::DistributionSummary(stats::GaussianParams{
                                     spec.mu, spec.sigma})})));

      // Stream: local-clock-stamped messages plus heartbeats.
      double stamp = 1.0;
      for (int k = 0; ok && k < kMessagesPerClient; ++k) {
        stamp += rng.uniform(1e-3, 4e-3);
        ok = wire.write_all(net::encode_frame(
            net::WireMessage(net::TimestampedMessage{
                ClientId(spec.id),
                MessageId(100 * spec.id + static_cast<std::uint64_t>(k)),
                TimePoint(stamp)})));
      }
      // Final heartbeat: "everything I will ever stamp below this has
      // been sent" — lets the completeness gate release the tail.
      if (ok) {
        ok = wire.write_all(net::encode_frame(net::WireMessage(
            net::Heartbeat{ClientId(spec.id), TimePoint(stamp + 0.05)})));
      }
      wire.close_write();
      if (!ok) std::fprintf(stderr, "client %u: write failed\n", spec.id);
    });
  }
  for (std::thread& client : clients) client.join();
  frontend.join_readers();

  // Sequencer side: one poll far past the horizon drains everything; the
  // emissions are broadcast back over every socket as frames.
  const std::size_t emitted = frontend.pump(TimePoint(2.0));
  std::printf("sequencer emitted %zu batches; clients read them back:\n\n",
              emitted);

  // Client 0 decodes the broadcast exactly like a remote consumer would.
  net::FrameDecoder decoder;
  std::vector<net::BatchEmission> batches;
  std::uint8_t buf[512];
  while (batches.size() < emitted) {
    const auto n = peers[0]->read_some(std::span<std::uint8_t>(buf, sizeof(buf)));
    if (!n || *n == 0) break;
    decoder.append(std::span<const std::uint8_t>(buf, *n));
    while (auto payload = decoder.next()) {
      if (auto message = net::decode(*payload)) {
        batches.push_back(std::get<net::BatchEmission>(*message));
      }
    }
  }
  for (const net::BatchEmission& batch : batches) {
    std::printf("  rank %llu:", static_cast<unsigned long long>(batch.rank));
    for (MessageId id : batch.messages) {
      std::printf(" msg %llu (client %llu)",
                  static_cast<unsigned long long>(id.value()),
                  static_cast<unsigned long long>(id.value() / 100));
    }
    std::printf("\n");
  }

  std::printf(
      "\n%zu messages total; client 2's +2 ms mean offset was corrected "
      "before ranking.\n",
      static_cast<std::size_t>(specs.size()) * kMessagesPerClient);
  return 0;
}
