#!/usr/bin/env bash
# Runs the throughput benchmark suite with JSON output so the perf
# trajectory is tracked PR over PR.
#
# Usage:
#   scripts/bench_throughput_json.sh [output.json]
#
# Environment:
#   BUILD_DIR     build tree holding bench_throughput (default: ./build)
#   BENCH_FILTER  optional --benchmark_filter regex (e.g. 'BM_Online.*')
#   BENCH_SMOKE   1 = small-size smoke run (CI): only the smallest size
#                 of every series, minimal repetition time. Keeps the
#                 bench binary exercised without burning CI minutes; do
#                 NOT commit smoke output over the tracked JSON.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT="${1:-$ROOT/BENCH_throughput.json}"
FILTER="${BENCH_FILTER:-}"
SMOKE="${BENCH_SMOKE:-0}"

if [[ ! -x "$BUILD_DIR/bench_throughput" ]]; then
  echo "error: $BUILD_DIR/bench_throughput not built." >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

EXTRA_ARGS=()
if [[ "$SMOKE" == "1" ]]; then
  # Smallest arg of each single-size series, plus the smallest message
  # count of every multi-shard series (all shard counts).
  FILTER="${FILTER:-/(64|256|1024|4096/[124])$}"
  # Plain-double form: accepted by every google-benchmark (the "0.05s"
  # suffix form only exists from 1.8 on).
  EXTRA_ARGS+=(--benchmark_min_time=0.05)
fi

"$BUILD_DIR/bench_throughput" \
  ${FILTER:+--benchmark_filter="$FILTER"} \
  ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $OUT"
