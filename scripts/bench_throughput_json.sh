#!/usr/bin/env bash
# Runs the throughput benchmark suite with JSON output so the perf
# trajectory is tracked PR over PR.
#
# The tracked artifact must come from a Release build: the script checks
# the build tree's CMAKE_BUILD_TYPE (configuring one if needed) and
# refuses to run from anything else. It also refuses to overwrite the
# tracked JSON from a build tree whose cached CMAKE_CXX_FLAGS carry
# sanitizer/coverage instrumentation (reconfiguring such a tree as
# Release does NOT clear those cached flags, so a sanitized run would
# silently pollute the perf trajectory). The bench binary itself stamps
# the JSON context with tommy_build_type, hardware_threads and the
# thread/shard grid the service benchmarks sweep.
#
# Usage:
#   scripts/bench_throughput_json.sh [output.json]
#
# Environment:
#   BUILD_DIR     build tree holding bench_throughput (default: ./build).
#                 Created/reconfigured as Release if missing or not
#                 Release.
#   BENCH_FILTER  optional --benchmark_filter regex (e.g. 'BM_Online.*')
#   BENCH_SMOKE   1 = small-size smoke run (CI): only the smallest size
#                 of every series, minimal repetition time. Keeps the
#                 bench binary exercised without burning CI minutes; do
#                 NOT commit smoke output over the tracked JSON.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT="${1:-$ROOT/BENCH_throughput.json}"
FILTER="${BENCH_FILTER:-}"
SMOKE="${BENCH_SMOKE:-0}"

build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" \
    2>/dev/null || true
}

cxx_flags() {
  sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" \
    2>/dev/null || true
}

# Instrumented trees (-fsanitize / coverage) may never write the tracked
# artifact — reconfiguring as Release below would not clear the cached
# flags — so check before touching the tree at all.
TRACKED="$ROOT/BENCH_throughput.json"
case "$(cxx_flags)" in
  *-fsanitize*|*-fprofile*|*--coverage*)
    if [[ "$(readlink -m "$OUT")" == "$(readlink -m "$TRACKED")" ]]; then
      echo "error: $BUILD_DIR is instrumented (CMAKE_CXX_FLAGS='$(cxx_flags)');" \
           "refusing to overwrite the tracked $TRACKED. Point BUILD_DIR at a" \
           "clean Release tree, or write elsewhere: $0 /tmp/bench.json" >&2
      exit 1
    fi
    echo "warning: benching an instrumented tree (output: $OUT)" >&2
    ;;
esac

if [[ "$(build_type)" != "Release" ]]; then
  echo "configuring $BUILD_DIR as Release (found: '$(build_type)')" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_throughput -j "$(nproc)"

if [[ ! -x "$BUILD_DIR/bench_throughput" ]]; then
  echo "error: $BUILD_DIR/bench_throughput not built (is google-benchmark" \
       "installed?)." >&2
  exit 1
fi

EXTRA_ARGS=()
if [[ "$SMOKE" == "1" ]]; then
  # Smallest arg of each single-size series, plus the smallest message
  # count of every multi-shard / worker-mode series, plus the idle-swap
  # mode of the reconfig family (mode 1 spins a producer thread — too
  # scheduler-sensitive for a smoke box; mode 0 keeps the family alive).
  FILTER="${FILTER:-/(64|256|1024)\$|/4096(/[0-9]+)*(/real_time)?\$|ReconfigSwap/64/0(/real_time)?\$|BackloggedInsertRelease/10000(/real_time)?\$}"
  # Plain-double form: accepted by every google-benchmark (the "0.05s"
  # suffix form only exists from 1.8 on).
  EXTRA_ARGS+=(--benchmark_min_time=0.05)
fi

"$BUILD_DIR/bench_throughput" \
  ${FILTER:+--benchmark_filter="$FILTER"} \
  ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console

# A Release tree is necessary but not sufficient: the benchmark HARNESS
# itself must be a Release build too. System libbenchmark packages are
# frequently Debug builds (the library then stamps
# "library_build_type": "debug" into the JSON context), and a Debug
# harness inflates every timed region with its own assertions. The
# bundled minibench (cmake -DTOMMY_BENCH_LIB=bundled, the default)
# inherits the tree's Release configure, so this check passes there by
# construction.
LIB_TYPE="$(python3 -c "
import json,sys
print(json.load(open('$OUT')).get('context',{}).get('library_build_type',''))")"
if [[ "$LIB_TYPE" != "release" ]]; then
  if [[ "$(readlink -m "$OUT")" == "$(readlink -m "$TRACKED")" ]]; then
    rm -f "$OUT"
    echo "error: benchmark library is a '$LIB_TYPE' build; refusing to" \
         "write the tracked $TRACKED from a non-Release harness." \
         "Configure with -DTOMMY_BENCH_LIB=bundled (default) or point the" \
         "system lib at a Release google-benchmark." >&2
    exit 1
  fi
  echo "warning: benchmark library is a '$LIB_TYPE' build (output: $OUT)" >&2
fi

echo "wrote $OUT"
