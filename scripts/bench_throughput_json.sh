#!/usr/bin/env bash
# Runs the throughput benchmark suite with JSON output so the perf
# trajectory is tracked PR over PR.
#
# Usage:
#   scripts/bench_throughput_json.sh [output.json]
#
# Environment:
#   BUILD_DIR     build tree holding bench_throughput (default: ./build)
#   BENCH_FILTER  optional --benchmark_filter regex (e.g. 'BM_Online.*')
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT="${1:-$ROOT/BENCH_throughput.json}"
FILTER="${BENCH_FILTER:-}"

if [[ ! -x "$BUILD_DIR/bench_throughput" ]]; then
  echo "error: $BUILD_DIR/bench_throughput not built." >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$BUILD_DIR/bench_throughput" \
  ${FILTER:+--benchmark_filter="$FILTER"} \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $OUT"
