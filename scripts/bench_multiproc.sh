#!/usr/bin/env bash
# Multi-process throughput benchmark: N client PROCESSES blast the wire
# protocol at ONE FrameServer process-half over a Unix-domain socket, and
# the measured ingest rate is merged into the tracked benchmark JSON —
# the first benchmarks in the repo whose numbers cross a real kernel
# socket boundary instead of a function call. Two families:
#
#   MP_UnixServerIngest   thread-per-connection readers, one blast
#                         process per client
#   MP_EpollServerIngest  event-loop (M-poller epoll) front-end at high
#                         connection counts (C=100 and C=1000), driven by
#                         one blast process holding C sockets round-robin
#
# The merge REPLACES any existing MP_* entries in the target JSON and
# leaves every other family untouched, so the tracked artifact is
# regenerated as:
#
#   scripts/bench_throughput_json.sh        # in-process families
#   scripts/bench_multiproc.sh              # + the multi-process families
#
# Usage:
#   scripts/bench_multiproc.sh [target.json]   (default: BENCH_throughput.json)
#
# Environment:
#   BUILD_DIR      build tree holding example_wire_replay (default ./build;
#                  configured/built as Release if needed, same policy as
#                  bench_throughput_json.sh)
#   MP_CLIENTS     client process count        (default 4)
#   MP_MESSAGES    messages per client         (default 50000)
#   MP_THREADS     1 = threaded service        (default 0)
#   MP_SHARDS      shard count                 (default 1)
#   MP_POLLERS     epoll poller threads        (default 2; a single
#                  sequential service serializes ingest behind one lock,
#                  so more pollers only add contention)
#   MP_EPOLL_MESSAGES  per-connection messages for the C=100 epoll row
#                      (default 2000; the C=1000 row scales it by 1/10)
#   BENCH_SMOKE    1 = small sizes for CI      (2 clients x 5000 msgs;
#                  epoll rows 100 and 20 msgs/connection)
set -euo pipefail

# C=1000 means >1000 fds in both the server and the blast driver.
ulimit -n 4096 2>/dev/null || true

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
TARGET="${1:-$ROOT/BENCH_throughput.json}"
CLIENTS="${MP_CLIENTS:-4}"
MESSAGES="${MP_MESSAGES:-50000}"
THREADS="${MP_THREADS:-0}"
SHARDS="${MP_SHARDS:-1}"
POLLERS="${MP_POLLERS:-2}"
EPOLL_MESSAGES="${MP_EPOLL_MESSAGES:-2000}"

if [[ "${BENCH_SMOKE:-0}" == "1" ]]; then
  CLIENTS=2
  MESSAGES=5000
  EPOLL_MESSAGES=100
fi

build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" \
    2>/dev/null || true
}

cxx_flags() {
  sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" \
    2>/dev/null || true
}

# Same provenance rule as bench_throughput_json.sh: instrumented trees
# never write the tracked artifact.
TRACKED="$ROOT/BENCH_throughput.json"
case "$(cxx_flags)" in
  *-fsanitize*|*-fprofile*|*--coverage*)
    if [[ "$(readlink -m "$TARGET")" == "$(readlink -m "$TRACKED")" ]]; then
      echo "error: $BUILD_DIR is instrumented; refusing to touch $TRACKED." >&2
      exit 1
    fi
    echo "warning: benching an instrumented tree (target: $TARGET)" >&2
    ;;
esac

if [[ "$(build_type)" != "Release" ]]; then
  echo "configuring $BUILD_DIR as Release (found: '$(build_type)')" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target example_wire_replay -j "$(nproc)"

BIN="$BUILD_DIR/example_wire_replay"
SOCK="$(mktemp -u /tmp/tommy_mp_XXXXXX.sock)"
OUT="$(mktemp /tmp/tommy_mp_XXXXXX.json)"
OUT_E100="$(mktemp /tmp/tommy_mp_XXXXXX.json)"
OUT_E1K="$(mktemp /tmp/tommy_mp_XXXXXX.json)"
SERVER_PID=""
# Kill the background server too: a failing client aborts the script at
# its `wait`, and an orphaned server would otherwise serve a deadline out
# against deleted temp paths.
trap '[[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null; rm -f "$SOCK" "$OUT" "$OUT_E100" "$OUT_E1K"' EXIT

# ── Row 1: thread-per-connection, one blast process per client ──────────
EXPECT=$((CLIENTS * MESSAGES))
SERVE_ARGS=(serve --unix "$SOCK" --clients "$CLIENTS"
            --expect-submits "$EXPECT" --shards "$SHARDS" --json "$OUT")
if [[ "$THREADS" == "1" ]]; then SERVE_ARGS+=(--threads); fi

"$BIN" "${SERVE_ARGS[@]}" &
SERVER_PID=$!

CLIENT_PIDS=()
for ((i = 0; i < CLIENTS; i++)); do
  "$BIN" blast --unix "$SOCK" --client "$i" --messages "$MESSAGES" &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done
wait "$SERVER_PID"
SERVER_PID=""

# ── Rows 2+3: epoll front-end at C=100 and C=1000 connections ───────────
# One blast process drives all C sockets round-robin; the server runs the
# event-loop transport with $POLLERS poller threads.
run_epoll_row() {
  local connections="$1" per_conn="$2" out="$3"
  local sock expect
  sock="$(mktemp -u /tmp/tommy_mp_XXXXXX.sock)"
  expect=$((connections * per_conn))
  "$BIN" serve --unix "$sock" --clients "$connections" \
      --expect-submits "$expect" --shards "$SHARDS" \
      --transport epoll --pollers "$POLLERS" --json "$out" &
  SERVER_PID=$!
  "$BIN" blast --unix "$sock" --client 0 --connections "$connections" \
      --messages "$per_conn"
  wait "$SERVER_PID"
  SERVER_PID=""
  rm -f "$sock"
}

run_epoll_row 100 "$EPOLL_MESSAGES" "$OUT_E100"
run_epoll_row 1000 $((EPOLL_MESSAGES / 10 > 0 ? EPOLL_MESSAGES / 10 : 1)) "$OUT_E1K"

# Merge: replace MP_* entries in the target (creating it with the first
# run's context if absent), keep everything else.
python3 - "$TARGET" "$OUT" "$OUT_E100" "$OUT_E1K" <<'EOF'
import json
import sys

target_path, run_paths = sys.argv[1], sys.argv[2:]
runs = []
for path in run_paths:
    with open(path) as f:
        runs.append(json.load(f))
try:
    with open(target_path) as f:
        target = json.load(f)
except FileNotFoundError:
    target = {"context": runs[0]["context"], "benchmarks": []}

kept = [b for b in target.get("benchmarks", [])
        if not b["name"].startswith("MP_")]
merged = [b for run in runs for b in run["benchmarks"]]
target["benchmarks"] = kept + merged
with open(target_path, "w") as f:
    json.dump(target, f, indent=1)
    f.write("\n")
print(f"merged {[b['name'] for b in merged]} into {target_path}")
EOF
