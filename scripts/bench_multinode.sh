#!/usr/bin/env bash
# Multi-node throughput benchmark: one merge PROCESS subscribes to N
# shard-node PROCESSES over Unix-domain uplink sockets, each shard
# streams its partition's ordered batches + safe-time gossip, and the
# measured merge-tier ingest rate lands in the tracked benchmark JSON as
# the MN_MergeIngest family — the cross-NODE counterpart of
# bench_multiproc.sh's cross-process MP_ family.
#
# The merge REPLACES any existing MN_* entries in the target JSON and
# leaves every other family untouched, so the tracked artifact is
# regenerated as:
#
#   scripts/bench_throughput_json.sh        # in-process families
#   scripts/bench_multiproc.sh              # + the multi-process family
#   scripts/bench_multinode.sh              # + the multi-node family
#
# Usage:
#   scripts/bench_multinode.sh [target.json]   (default: BENCH_throughput.json)
#
# Environment:
#   BUILD_DIR      build tree holding example_multinode (default ./build;
#                  configured/built as Release if needed, same policy as
#                  the sibling bench scripts)
#   MN_NODES       shard node counts to sweep   (default "1 2 4")
#   MN_CLIENTS     total client count           (default 8)
#   MN_MESSAGES    messages per client          (default 20000)
#   BENCH_SMOKE    1 = small sizes for CI       (4 clients x 2000 msgs)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
TARGET="${1:-$ROOT/BENCH_throughput.json}"
NODES_SWEEP="${MN_NODES:-1 2 4}"
CLIENTS="${MN_CLIENTS:-8}"
MESSAGES="${MN_MESSAGES:-20000}"

if [[ "${BENCH_SMOKE:-0}" == "1" ]]; then
  CLIENTS=4
  MESSAGES=2000
fi

build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" \
    2>/dev/null || true
}

cxx_flags() {
  sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" \
    2>/dev/null || true
}

# Same provenance rule as the sibling bench scripts: instrumented trees
# never write the tracked artifact.
TRACKED="$ROOT/BENCH_throughput.json"
case "$(cxx_flags)" in
  *-fsanitize*|*-fprofile*|*--coverage*)
    if [[ "$(readlink -m "$TARGET")" == "$(readlink -m "$TRACKED")" ]]; then
      echo "error: $BUILD_DIR is instrumented; refusing to touch $TRACKED." >&2
      exit 1
    fi
    echo "warning: benching an instrumented tree (target: $TARGET)" >&2
    ;;
esac

if [[ "$(build_type)" != "Release" ]]; then
  echo "configuring $BUILD_DIR as Release (found: '$(build_type)')" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target example_multinode -j "$(nproc)"

BIN="$BUILD_DIR/example_multinode"
PREFIX="$(mktemp -u /tmp/tommy_mn_XXXXXX)"
OUTS=()
SHARD_PIDS=()
MERGE_PID=""
STANDBY_PID=""
# Kill stragglers on abort: an orphaned merge would wait out its connect
# budget against deleted socket paths. The ${arr[@]+...} guard (not
# ":-") matters under set -e: on a clean run SHARD_PIDS is empty, and
# "${SHARD_PIDS[@]:-}" would expand to one empty word whose `kill ''`
# fails the trap — turning every successful run into exit 1.
trap '[[ -n "$MERGE_PID" ]] && kill "$MERGE_PID" 2>/dev/null;
      [[ -n "$STANDBY_PID" ]] && kill "$STANDBY_PID" 2>/dev/null;
      for pid in ${SHARD_PIDS[@]+"${SHARD_PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
      done;
      rm -f "${PREFIX}"_*.sock "${OUTS[@]:-}"' EXIT

# One measured sweep row: N shards into one reporting merge, plus
# STANDBYS extra merge replicas subscribed to the same uplinks (the
# shards hold their streams until every replica is attached).
run_row() {
  local N="$1" STANDBYS="$2" OUT="$3"
  rm -f "${PREFIX}"_*.sock

  "$BIN" merge --nodes "$N" --clients "$CLIENTS" --messages "$MESSAGES" \
      --uplink-prefix "$PREFIX" --json "$OUT" --standbys "$STANDBYS" &
  MERGE_PID=$!

  STANDBY_PID=""
  if ((STANDBYS > 0)); then
    "$BIN" merge --nodes "$N" --clients "$CLIENTS" --messages "$MESSAGES" \
        --uplink-prefix "$PREFIX" &
    STANDBY_PID=$!
  fi

  SHARD_PIDS=()
  for ((i = 0; i < N; i++)); do
    "$BIN" shard --node "$i" --nodes "$N" --clients "$CLIENTS" \
        --messages "$MESSAGES" --uplink-prefix "$PREFIX" \
        --wait-subscribers "$((1 + STANDBYS))" &
    SHARD_PIDS+=($!)
  done
  for pid in "${SHARD_PIDS[@]}"; do wait "$pid"; done
  wait "$MERGE_PID"
  MERGE_PID=""
  if [[ -n "$STANDBY_PID" ]]; then
    wait "$STANDBY_PID"
    STANDBY_PID=""
  fi
  SHARD_PIDS=()
}

for N in $NODES_SWEEP; do
  OUT="$(mktemp /tmp/tommy_mn_XXXXXX.json)"
  OUTS+=("$OUT")
  run_row "$N" 0 "$OUT"
done

# The replication-cost row: same 2-shard deployment with one hot-standby
# merge attached to the same uplinks (MN_MergeIngest/…/standbys:1).
OUT="$(mktemp /tmp/tommy_mn_XXXXXX.json)"
OUTS+=("$OUT")
run_row 2 1 "$OUT"

# Merge: replace MN_* entries in the target (creating it with the first
# run's context if absent), keep everything else.
python3 - "$TARGET" "${OUTS[@]}" <<'EOF'
import json
import sys

target_path, run_paths = sys.argv[1], sys.argv[2:]
runs = []
for path in run_paths:
    with open(path) as f:
        runs.append(json.load(f))
try:
    with open(target_path) as f:
        target = json.load(f)
except FileNotFoundError:
    target = {"context": runs[0]["context"], "benchmarks": []}

kept = [b for b in target.get("benchmarks", [])
        if not b["name"].startswith("MN_")]
fresh = [b for run in runs for b in run["benchmarks"]]
target["benchmarks"] = kept + fresh
with open(target_path, "w") as f:
    json.dump(target, f, indent=1)
    f.write("\n")
names = [b["name"] for b in fresh]
print(f"merged {names} into {target_path}")
EOF
